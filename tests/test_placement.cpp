// Tests for the AIE placement engine (section III-C): layer/band
// structure, boundary rules, stacking, resource counts, feasibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "accel/placement.hpp"

namespace hsvd::accel {
namespace {

HeteroSvdConfig base_config(std::size_t n, int p_eng, int p_task) {
  HeteroSvdConfig c;
  c.rows = n;
  c.cols = n;
  c.p_eng = p_eng;
  c.p_task = p_task;
  return c;
}

TEST(Placement, LayerAndEngineCounts) {
  auto cfg = base_config(128, 8, 1);
  auto result = place(cfg);
  ASSERT_EQ(result.tasks.size(), 1u);
  const auto& task = result.tasks[0];
  EXPECT_EQ(task.orth.size(), 15u);  // 2k-1 layers
  for (const auto& layer : task.orth) EXPECT_EQ(layer.size(), 8u);
  EXPECT_EQ(task.norm.size(), 8u);  // one norm-AIE per engine column
  EXPECT_EQ(result.num_orth, 120);
  EXPECT_EQ(result.num_norm, 8);
  EXPECT_EQ(result.num_plio, 6);  // 4 orth + 2 norm (Table I)
}

TEST(Placement, TableIOrthCountFormula) {
  // Table I: num_orth = n(2n-1)k with n = P_eng, k = P_task.
  for (auto [pe, pt] : {std::pair{2, 3}, {4, 2}, {8, 2}}) {
    auto cfg = base_config(128, pe, pt);
    auto result = place(cfg);
    EXPECT_EQ(result.num_orth, pe * (2 * pe - 1) * pt) << pe << "," << pt;
    EXPECT_EQ(result.num_norm, pe * pt);
    EXPECT_EQ(result.num_plio, 6 * pt);
  }
}

TEST(Placement, NoTileUsedTwice) {
  auto cfg = base_config(256, 8, 2);
  auto result = place(cfg);
  std::set<versal::TileCoord> used;
  for (const auto& task : result.tasks) {
    for (const auto& layer : task.orth)
      for (const auto& t : layer) EXPECT_TRUE(used.insert(t).second);
    for (const auto& t : task.norm) EXPECT_TRUE(used.insert(t).second);
    for (const auto& t : task.mem) EXPECT_TRUE(used.insert(t).second);
  }
  EXPECT_EQ(static_cast<int>(used.size()), result.total_aie());
}

TEST(Placement, OrthLayersAvoidBoundaryRows) {
  // Multi-band tasks: no orth-AIE in the array's last row (its output
  // would have nowhere to go) and none in a continuation band's top row.
  auto cfg = base_config(128, 8, 1);  // 15 layers -> 3 bands
  auto result = place(cfg);
  for (const auto& layer : result.tasks[0].orth)
    for (const auto& t : layer) EXPECT_LT(t.row, 7);
  EXPECT_EQ(result.bands_per_task, 3);
  // Band crossings need mem-AIEs: 2k per crossing.
  EXPECT_EQ(result.num_mem, 2 * 8 * (3 - 1));
}

TEST(Placement, SingleBandTasksStackVertically) {
  // P_eng = 2: 3 layers + norm row = 4 rows -> two tasks per strip.
  auto cfg = base_config(128, 2, 26);
  auto result = place(cfg);
  ASSERT_EQ(result.tasks.size(), 26u);
  // 26 tasks of width 2, stacked 2-high: 13 strips x 2 columns = 26 <= 50.
  int max_col = 0;
  for (const auto& task : result.tasks)
    for (const auto& layer : task.orth)
      for (const auto& t : layer) max_col = std::max(max_col, t.col);
  EXPECT_LT(max_col, 26);
}

TEST(Placement, InfeasibleConfigurationsRejected) {
  // P_eng = 8 needs 3 bands = 24 columns per task: three tasks do not fit
  // the 50-column array width.
  auto cfg = base_config(256, 8, 3);
  EXPECT_FALSE(try_place(cfg).has_value());
  EXPECT_THROW(place(cfg), std::invalid_argument);
}

TEST(Placement, MaxPengFitsAlone) {
  auto cfg = base_config(176, 11, 1);  // 21 layers -> 4 bands, 44 columns
  auto result = try_place(cfg);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_orth, 11 * 21);
  EXPECT_LE(result->total_aie(), 400);
}

TEST(Placement, TotalsStayWithinDevice) {
  for (int pe : {1, 2, 3, 4, 6, 8}) {
    for (int pt = 1; pt <= 26; ++pt) {
      auto cfg = base_config(128, pe, pt);
      auto result = try_place(cfg);
      if (!result.has_value()) continue;
      EXPECT_LE(result->total_aie(), cfg.device.total_aie);
      EXPECT_LE(result->num_plio, cfg.device.total_plio);
    }
  }
}

TEST(Placement, PaddedColumnCountsWork) {
  // 256 is not divisible by 6; the config pads to 258 (43 blocks).
  auto cfg = base_config(256, 6, 1);
  EXPECT_EQ(cfg.padded_cols(), 258u);
  EXPECT_EQ(cfg.blocks(), 43);
  EXPECT_TRUE(try_place(cfg).has_value());
}

TEST(Placement, ConfigValidation) {
  auto cfg = base_config(128, 8, 1);
  cfg.p_eng = 12;  // beyond Table I's range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_config(128, 8, 27);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_config(8, 8, 1);  // single block: not a block-pair workload
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  HeteroSvdConfig wide;
  wide.rows = 64;
  wide.cols = 128;
  EXPECT_THROW(wide.validate(), std::invalid_argument);
}

TEST(Placement, MaskedPlacementAvoidsFaultyTiles) {
  auto cfg = base_config(64, 4, 2);
  const auto canonical = place(cfg);
  const auto canonical_tiles = used_tiles(canonical);

  // An empty mask reproduces the canonical floorplan exactly.
  const auto unmasked = try_place(cfg, {});
  ASSERT_TRUE(unmasked.has_value());
  EXPECT_EQ(used_tiles(*unmasked), canonical_tiles);

  // Masking a canonical tile shifts the floorplan off it.
  const versal::TileCoord bad = canonical_tiles.front();
  const auto shifted = try_place(cfg, {bad});
  ASSERT_TRUE(shifted.has_value());
  const auto shifted_tiles = used_tiles(*shifted);
  EXPECT_TRUE(std::none_of(
      shifted_tiles.begin(), shifted_tiles.end(),
      [&](const versal::TileCoord& t) { return t == bad; }));
  // Same structure, different tiles.
  EXPECT_EQ(shifted->num_orth, canonical.num_orth);
  EXPECT_EQ(shifted->num_norm, canonical.num_norm);
  EXPECT_EQ(shifted->bands_per_task, canonical.bands_per_task);
}

TEST(Placement, MaskedPlacementFailsWhenTheArrayIsExhausted) {
  auto cfg = base_config(64, 4, 1);
  std::vector<versal::TileCoord> everything;
  for (int r = 0; r < cfg.device.aie_rows; ++r) {
    for (int c = 0; c < cfg.device.aie_cols; ++c) {
      everything.push_back({r, c});
    }
  }
  EXPECT_FALSE(try_place(cfg, everything).has_value());
}

}  // namespace
}  // namespace hsvd::accel
