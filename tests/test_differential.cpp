// Property-based differential harness: every execution mode the library
// offers -- serial, multi-threaded host, sharded across S arrays, and
// fault-injected-with-recovery -- is pinned to the double-precision
// reference SVD on a seeded set of randomized shapes, including
// degenerate (m == n), rank-deficient, ill-conditioned (kappa up to
// 1e8), graded (harmonic), and fast-decay (sigma_i ~ 2^-i) inputs. On
// top of the accuracy bounds, all modes must agree bit-for-bit with the
// serial path (host threading, sharding, and recovered fault runs never
// reorder arithmetic), and the S = 1 sharded engine must be
// bit-identical -- timings included -- to the plain single-array
// accelerator it wraps. Every healthy path's factors must additionally
// satisfy the exact medium/full bounds the verify layer's
// ResultVerifier enforces in production (DESIGN.md section 15).
//
// The case set is seeded (default 20250806) so failures reproduce; set
// HSVD_DIFF_SEED to fuzz a different draw locally.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/sharded.hpp"
#include "case_matrix.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"
#include "scenarios/update.hpp"
#include "verify/verifier.hpp"
#include "versal/faults.hpp"

namespace hsvd {
namespace {

struct DiffCase {
  std::string name;
  linalg::MatrixF a;
  // Reference factors, computed once per case in double precision.
  linalg::SvdResult ref;
  // Whether the 1e-6 coherence target is certifiable: a rank-deficient
  // input leaves null columns that are pure float noise with O(1)
  // mutual coherence, so the engine honestly reports kNotConverged
  // while the factors are still correct to the bounds below.
  bool expect_converged = true;
};

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("HSVD_DIFF_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return v;
  }
  return 20250806ull;
}

// Random shapes: tall, degenerate square, rank-deficient, and
// ill-conditioned up to kappa = 1e6. Kept small enough that the whole
// mode matrix stays inside the default (non-LONG) ctest budget.
std::vector<DiffCase> make_cases() {
  Rng rng(harness_seed());
  std::vector<DiffCase> cases;
  const auto add = [&cases](std::string name, linalg::MatrixD a,
                            bool expect_converged = true) {
    DiffCase c;
    c.name = std::move(name);
    c.ref = linalg::reference_svd(a);
    c.a = a.cast<float>();
    c.expect_converged = expect_converged;
    cases.push_back(std::move(c));
  };

  // Random tall shapes, rows >= cols, drawn from the seeded rng.
  for (int i = 0; i < 3; ++i) {
    const std::size_t cols = 16 + 8 * static_cast<std::size_t>(rng.below(4));
    const std::size_t rows = cols + 8 * static_cast<std::size_t>(rng.below(4));
    add(cat("gaussian_", rows, "x", cols),
        linalg::random_gaussian(rows, cols, rng));
  }
  // Degenerate m == n.
  add("square_40x40", linalg::random_gaussian(40, 40, rng));
  // Rank-deficient: the trailing third of the spectrum is exactly zero.
  {
    const std::size_t n = 32;
    auto spectrum = linalg::geometric_spectrum(n, 100.0);
    for (std::size_t i = 2 * n / 3; i < n; ++i) spectrum[i] = 0.0;
    add("rank_deficient_48x32",
        linalg::matrix_with_spectrum(48, n, spectrum, rng),
        /*expect_converged=*/false);
  }
  // Ill-conditioned, kappa = 1e4 and 1e6.
  add("kappa1e4_40x24",
      linalg::matrix_with_spectrum(40, 24,
                                   linalg::geometric_spectrum(24, 1e4), rng));
  add("kappa1e6_48x32",
      linalg::matrix_with_spectrum(48, 32,
                                   linalg::geometric_spectrum(32, 1e6), rng));
  // kappa = 1e8: the trailing singular values sit below the float32
  // coherence target (1e-8 < 1e-6 relative), so the engine honestly
  // reports kNotConverged while the dominant subspace stays correct.
  add("kappa1e8_48x32",
      linalg::matrix_with_spectrum(48, 32,
                                   linalg::geometric_spectrum(32, 1e8), rng),
      /*expect_converged=*/false);
  // Graded (harmonic) spectrum: sigma_i = 1 / (i + 1), a slow polynomial
  // decay with every value well inside the certifiable range.
  {
    const std::size_t n = 32;
    std::vector<double> graded(n);
    for (std::size_t i = 0; i < n; ++i) {
      graded[i] = 1.0 / static_cast<double>(i + 1);
    }
    add("graded_40x32", linalg::matrix_with_spectrum(40, n, graded, rng));
  }
  // Fast decay: sigma_i = 2^-i crosses the 1e-6 coherence cutoff around
  // i = 20, so the tail is numerical noise the engine cannot certify.
  {
    const std::size_t n = 24;
    std::vector<double> decay(n);
    for (std::size_t i = 0; i < n; ++i) {
      decay[i] = std::pow(0.5, static_cast<double>(i));
    }
    add("fast_decay_32x24", linalg::matrix_with_spectrum(32, n, decay, rng),
        /*expect_converged=*/false);
  }
  return cases;
}

const std::vector<DiffCase>& cases() {
  static const std::vector<DiffCase> all = make_cases();
  return all;
}

// One fixed accelerator configuration per shape: keeps the DSE out of
// the hot loop and pins the placement so the fault mode can target a
// tile that provably exists.
accel::HeteroSvdConfig case_config(const linalg::MatrixF& a) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = a.rows();
  cfg.cols = a.cols();
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 6;  // precision mode raises the sweep cap to 30
  return cfg;
}

SvdOptions case_options(const DiffCase& c) {
  SvdOptions opts;
  opts.config = case_config(c.a);
  opts.threads = 1;
  // Pin the serial baseline to the sequential slot-chain path: kAuto
  // would pipeline on multi-core CI hosts, and the pipelined mode is a
  // *subject* of this harness (kOn vs kOff below), not its reference.
  opts.config->pipeline = accel::PipelineMode::kOff;
  return opts;
}

// Max singular-value error relative to the spectrum's scale (per-index
// relative error is meaningless at kappa = 1e6 in float32: the smallest
// values carry absolute error ~ kappa * eps * sigma_min).
double sigma_scale_error(const std::vector<float>& got,
                         const std::vector<double>& ref) {
  const double scale = std::max(ref.empty() ? 0.0 : ref.front(), 1e-12);
  double worst = 0.0;
  const std::size_t n = std::max(got.size(), ref.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double x = i < got.size() ? got[i] : 0.0;
    const double y = i < ref.size() ? ref[i] : 0.0;
    worst = std::max(worst, std::fabs(x - y) / scale);
  }
  return worst;
}

// Columns whose reference singular value is significant; zero-sigma
// columns of a rank-deficient input carry no orthogonality contract
// (U's null-space columns are whatever the sweep left, V's are zeroed
// by derive_v).
linalg::MatrixD significant_columns(const linalg::MatrixF& m,
                                    const std::vector<double>& ref_sigma,
                                    double rel_cutoff) {
  const double cutoff =
      rel_cutoff * std::max(ref_sigma.empty() ? 0.0 : ref_sigma.front(), 1e-12);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < m.cols() && i < ref_sigma.size(); ++i) {
    if (ref_sigma[i] > cutoff) keep.push_back(i);
  }
  linalg::MatrixD out(m.rows(), keep.size());
  for (std::size_t k = 0; k < keep.size(); ++k) {
    const auto src = m.col(keep[k]);
    for (std::size_t r = 0; r < m.rows(); ++r) out(r, k) = src[r];
  }
  return out;
}

void check_against_reference(const DiffCase& c, const Svd& r,
                             const std::string& mode) {
  SCOPED_TRACE(c.name + " [" + mode + "]");
  if (c.expect_converged) {
    ASSERT_EQ(r.status, SvdStatus::kOk);
  } else {
    ASSERT_NE(r.status, SvdStatus::kFailed);
  }
  ASSERT_EQ(r.sigma.size(), c.a.cols());

  // Singular values within float tolerance of the reference spectrum.
  EXPECT_LT(sigma_scale_error(r.sigma, c.ref.sigma), 5e-5);
  // Orthogonality of the factor columns. U comes straight off the
  // sweep, whose coherence criterion is scale-relative, so every
  // non-null column is testable. V is recovered as A^T u_i / sigma_i,
  // whose float error grows as eps * sigma_max / sigma_i -- only the
  // well-conditioned subspace (sigma_i >= 1e-3 * sigma_max) carries a
  // 1e-3 orthogonality contract.
  EXPECT_LT(linalg::orthogonality_error(
                significant_columns(r.u, c.ref.sigma, 1e-7)),
            1e-3);
  EXPECT_LT(linalg::orthogonality_error(
                significant_columns(r.v, c.ref.sigma, 1e-3)),
            1e-3);
  // Reconstruction: A ~ U diag(sigma) V^T relative to ||A||_F.
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::reconstruction_error(c.a.cast<double>(),
                                         r.u.cast<double>(), sigma,
                                         r.v.cast<double>()),
            1e-4);
}

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void expect_bit_identical(const Svd& base, const Svd& other,
                          const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_TRUE(same_bits(base.u, other.u));
  EXPECT_TRUE(same_bits(base.sigma, other.sigma));
  EXPECT_TRUE(same_bits(base.v, other.v));
  EXPECT_EQ(base.iterations, other.iterations);
}

// The serial result of each case, shared by the mode tests below (gtest
// runs them in one process, so compute-once is safe and saves the
// default suite several seconds).
const Svd& serial_result(std::size_t i) {
  static std::vector<Svd> results = [] {
    std::vector<Svd> out;
    for (const auto& c : cases()) out.push_back(svd(c.a, case_options(c)));
    return out;
  }();
  return results[i];
}

// ---- Mode: serial --------------------------------------------------------

TEST(Differential, SerialMatchesReference) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    check_against_reference(cases()[i], serial_result(i), "serial");
  }
}

// ---- Mode: multi-threaded host ------------------------------------------

TEST(Differential, ThreadedMatchesReferenceAndSerialBits) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    SvdOptions opts = case_options(c);
    opts.threads = 3;
    const Svd r = svd(c.a, opts);
    check_against_reference(c, r, "threads=3");
    expect_bit_identical(serial_result(i), r, c.name + " threads=3 vs serial");
  }
}

// ---- Mode: sharded S in {1, 2, 4} ---------------------------------------

TEST(Differential, ShardedMatchesReferenceAndSerialBits) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    for (int s : {1, 2, 4}) {
      SvdOptions opts = case_options(c);
      opts.shards = s;
      const Svd r = svd(c.a, opts);
      check_against_reference(c, r, cat("shards=", s));
      expect_bit_identical(serial_result(i), r,
                           cat(c.name, " shards=", s, " vs serial"));
    }
  }
}

// The S = 1 sharded engine is the existing single-array path,
// bit-for-bit: factors AND the simulated timeline.
TEST(Differential, ShardedS1BitIdenticalToSingleArrayPath) {
  for (const auto& c : cases()) {
    SCOPED_TRACE(c.name);
    const accel::HeteroSvdConfig cfg = case_config(c.a);
    accel::HeteroSvdAccelerator plain(cfg);
    const accel::RunResult a = plain.run({c.a});
    accel::ShardedAccelerator sharded(cfg, 1);
    const accel::RunResult b = sharded.run({c.a});
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    EXPECT_TRUE(same_bits(a.tasks[0].u, b.tasks[0].u));
    EXPECT_TRUE(same_bits(a.tasks[0].sigma, b.tasks[0].sigma));
    EXPECT_EQ(a.tasks[0].start_seconds, b.tasks[0].start_seconds);
    EXPECT_EQ(a.tasks[0].end_seconds, b.tasks[0].end_seconds);
    EXPECT_EQ(a.batch_seconds, b.batch_seconds);
    EXPECT_EQ(a.stats.dma_bytes, b.stats.dma_bytes);
    EXPECT_EQ(a.stats.stream_bytes, b.stats.stream_bytes);
  }
}

// ---- Mode: streaming stage pipeline --------------------------------------

TEST(Differential, PipelinedMatchesReferenceAndSerialBits) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    SvdOptions opts = case_options(c);
    opts.config->pipeline = accel::PipelineMode::kOn;
    const Svd r = svd(c.a, opts);
    check_against_reference(c, r, "pipelined");
    expect_bit_identical(serial_result(i), r, c.name + " pipelined vs serial");
  }
}

// The pipeline's contract is stronger than factor identity: the load
// stage runs every fabric op in sequential order, so the simulated
// timeline and the simulator's traffic counters match too.
TEST(Differential, PipelinedBitIdenticalTimeline) {
  for (const auto& c : cases()) {
    SCOPED_TRACE(c.name);
    accel::HeteroSvdConfig cfg = case_config(c.a);
    cfg.pipeline = accel::PipelineMode::kOff;
    accel::HeteroSvdAccelerator sequential(cfg);
    const accel::RunResult a = sequential.run({c.a});
    cfg.pipeline = accel::PipelineMode::kOn;
    accel::HeteroSvdAccelerator pipelined(cfg);
    const accel::RunResult b = pipelined.run({c.a});
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    EXPECT_TRUE(same_bits(a.tasks[0].u, b.tasks[0].u));
    EXPECT_TRUE(same_bits(a.tasks[0].sigma, b.tasks[0].sigma));
    EXPECT_EQ(a.tasks[0].start_seconds, b.tasks[0].start_seconds);
    EXPECT_EQ(a.tasks[0].end_seconds, b.tasks[0].end_seconds);
    EXPECT_EQ(a.batch_seconds, b.batch_seconds);
    EXPECT_EQ(a.stats.kernel_invocations, b.stats.kernel_invocations);
    EXPECT_EQ(a.stats.dma_bytes, b.stats.dma_bytes);
    EXPECT_EQ(a.stats.stream_bytes, b.stats.stream_bytes);
  }
}

// ---- Mode: SIMD dispatch targets -----------------------------------------

// Factor identity across kernel targets: the AVX2 kernels implement the
// scalar path's 8-lane accumulator model exactly, so the whole harness's
// factors must be bit-identical whichever target dispatch picked. Runs
// every case under an explicitly pinned scalar target and, when the host
// supports it, the AVX2 target.
TEST(Differential, SimdDispatchBitIdenticalAcrossPaths) {
  // Materialize the shared serial results *before* pinning a target, so
  // their cached factors come from whatever dispatch resolved at startup
  // (the production configuration).
  for (std::size_t i = 0; i < cases().size(); ++i) serial_result(i);

  const auto run_with = [](const simd::Kernels& target, std::size_t i) {
    const simd::Kernels* prev = simd::set_active_for_testing(&target);
    const Svd r = svd(cases()[i].a, case_options(cases()[i]));
    simd::set_active_for_testing(prev);
    return r;
  };

  ASSERT_EQ(simd::scalar_kernels().lane_width, 8);
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    const Svd scalar = run_with(simd::scalar_kernels(), i);
    check_against_reference(c, scalar, "simd=scalar");
    expect_bit_identical(serial_result(i), scalar,
                         c.name + " simd=scalar vs serial");
    if (simd::avx2_compiled() && simd::avx2_supported()) {
      ASSERT_EQ(simd::avx2_kernels().lane_width, 8);
      const Svd avx2 = run_with(simd::avx2_kernels(), i);
      expect_bit_identical(scalar, avx2, c.name + " simd=avx2 vs scalar");
    }
  }
}

// ---- Mode: routed backends ------------------------------------------------

// Contract: every functional backend behind the router produces *real*
// factors held to the same tolerance bounds as the accelerator modes
// above (sigma scale 5e-5, orthogonality 1e-3, reconstruction 1e-4
// against the double-precision reference). For the model-backed
// comparators (fpga-bcv / gpu-wcycle) only the *reported time* is the
// fitted Table II/III model -- the numerics come from a host one-sided
// Jacobi and are checked here at full strength, not "model tolerance".
TEST(Differential, RoutedHostBackendsMatchReference) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    for (const char* pin : {"cpu", "fpga-bcv", "gpu-wcycle"}) {
      SvdOptions opts = case_options(c);
      opts.backend = pin;
      const Svd r = svd(c.a, opts);
      check_against_reference(c, r, cat("backend=", pin));
      EXPECT_EQ(r.backend, pin);
      // Honesty labels: modeled time on the comparators, measured wall
      // time everywhere host-executed, never mixed.
      EXPECT_EQ(r.modeled_time, std::string(pin) != "cpu");
      EXPECT_GT(r.wall_seconds, 0.0);
    }
  }
}

// The aie pin is the classic accelerator path plus provenance labels:
// factors, sweep count, everything bit-identical to the serial mode.
TEST(Differential, RoutedAiePinBitIdenticalToSerial) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    SvdOptions opts = case_options(c);
    opts.backend = "aie";
    const Svd r = svd(c.a, opts);
    check_against_reference(c, r, "backend=aie");
    EXPECT_EQ(r.backend, "aie");
    expect_bit_identical(serial_result(i), r,
                         c.name + " backend=aie vs serial");
  }
}

// ---- Mode: result attestation bounds --------------------------------------

// The verify layer's acceptance contract: every healthy execution
// path's factors satisfy the *exact* medium (orthogonality) and full
// (relative residual) bounds the ResultVerifier enforces in production
// -- the same check the escalation ladder uses to decide a result is
// silently corrupt. A bound regression here means production attestation
// would start escalating healthy work.
void expect_verifier_clean(const DiffCase& c, const Svd& r,
                           const std::string& mode) {
  SCOPED_TRACE(c.name + " [" + mode + "]");
  ASSERT_NE(r.status, SvdStatus::kFailed);
  const verify::ResultVerifier verifier(SvdOptions{}.precision);
  const verify::VerifyOutcome out = verifier.check(c.a, r);
  EXPECT_TRUE(out.passed) << out.note;
  ASSERT_GE(out.u_orth, 0.0);
  EXPECT_LE(out.u_orth, out.orth_bound);
  if (!r.v.empty()) {
    ASSERT_GE(out.v_orth, 0.0);
    EXPECT_LE(out.v_orth, out.v_orth_bound);
    ASSERT_GE(out.residual, 0.0);
    EXPECT_LE(out.residual, out.residual_bound);
  }
}

TEST(Differential, HealthyPathsSatisfyVerifierBounds) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    // Serial (the shared baseline result).
    expect_verifier_clean(c, serial_result(i), "serial");
    // Streaming stage pipeline.
    {
      SvdOptions opts = case_options(c);
      opts.config->pipeline = accel::PipelineMode::kOn;
      expect_verifier_clean(c, svd(c.a, opts), "pipelined");
    }
    // Sharded across two arrays.
    {
      SvdOptions opts = case_options(c);
      opts.shards = 2;
      expect_verifier_clean(c, svd(c.a, opts), "shards=2");
    }
    // Every routed backend, functional and model-backed.
    for (const char* pin : {"aie", "cpu", "fpga-bcv", "gpu-wcycle"}) {
      SvdOptions opts = case_options(c);
      opts.backend = pin;
      expect_verifier_clean(c, svd(c.a, opts), cat("backend=", pin));
    }
  }
}

// ---- Mode: workload scenarios ---------------------------------------------

// The scenario front-ends (tall-skinny QR pre-reduction, truncated
// sketch, rank-1 update chains) are held to the same reference bounds as
// the dense modes above, across the same execution-mode matrix. The
// inner core's mode knobs propagate through the front-end, and the host
// assembly stages are deterministic, so every arithmetic-preserving
// mode (pipelined, sharded, aie pin) must also be bit-identical to the
// scenario's serial run. Cases come from the generated case matrix
// (tests/case_matrix.hpp) so each one reproduces from its printed name.
const std::vector<std::string>& scenario_modes() {
  static const std::vector<std::string> modes = {"serial", "pipelined",
                                                 "sharded", "routed"};
  return modes;
}

// Same pinned accelerator shape as case_config, but without rows/cols:
// the facade re-derives those per call, which matters here because the
// front-end's inner matrix (the n x n triangle, the n x l sketch) has a
// different shape than the outer input.
SvdOptions scenario_mode_options(const std::string& mode) {
  SvdOptions opts;
  opts.threads = 1;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 6;
  cfg.pipeline =
      mode == "pipelined" ? accel::PipelineMode::kOn : accel::PipelineMode::kOff;
  opts.config = cfg;
  if (mode == "sharded") opts.shards = 2;
  if (mode == "routed") opts.backend = "aie";
  return opts;
}

DiffCase make_scenario_case(const hsvd::testing::CaseSpec& spec) {
  DiffCase c;
  c.name = spec.name();
  const linalg::MatrixD a = hsvd::testing::generate_case(spec);
  c.ref = linalg::reference_svd(a);
  c.a = a.cast<float>();
  return c;
}

TEST(Differential, ScenarioTallSkinnyMatchesReferenceAcrossModes) {
  for (const std::size_t ratio :
       {std::size_t{4}, std::size_t{32}, std::size_t{256}}) {
    hsvd::testing::CaseSpec spec;
    spec.cols = 8;
    spec.ratio = ratio;
    spec.condition = 1e2;
    spec.seed = harness_seed();
    const DiffCase c = make_scenario_case(spec);
    Svd base;
    for (const std::string& mode : scenario_modes()) {
      SvdOptions opts = scenario_mode_options(mode);
      opts.scenario = scenarios::Scenario::kTallSkinny;
      const Svd r = svd(c.a, opts);
      EXPECT_EQ(r.scenario, "tall-skinny");
      check_against_reference(c, r, "tall-skinny " + mode);
      if (mode == "serial") {
        base = r;
      } else {
        expect_bit_identical(base, r,
                             c.name + " tall-skinny " + mode + " vs serial");
      }
    }
    // The cpu pin swaps the inner core for the host Jacobi: different
    // bits, same bounds.
    SvdOptions cpu = scenario_mode_options("serial");
    cpu.backend = "cpu";
    cpu.scenario = scenarios::Scenario::kTallSkinny;
    check_against_reference(c, svd(c.a, cpu), "tall-skinny cpu");
    // Modeled comparators never carry an engaged front-end.
    SvdOptions modeled = scenario_mode_options("serial");
    modeled.backend = "fpga-bcv";
    modeled.scenario = scenarios::Scenario::kTallSkinny;
    EXPECT_THROW(svd(c.a, modeled), InputError);
  }
}

TEST(Differential, ScenarioTruncatedTopKWithinBoundAcrossModes) {
  constexpr std::size_t kTopK = 4;
  for (const hsvd::testing::Decay decay :
       {hsvd::testing::Decay::kGeometric, hsvd::testing::Decay::kStep}) {
    hsvd::testing::CaseSpec spec;
    spec.cols = 16;
    spec.ratio = 4;
    spec.condition = 1e2;
    spec.decay = decay;
    spec.seed = harness_seed();
    const DiffCase c = make_scenario_case(spec);
    Svd base;
    for (const std::string& mode : scenario_modes()) {
      SCOPED_TRACE(c.name + " truncated " + mode);
      SvdOptions opts = scenario_mode_options(mode);
      opts.top_k = kTopK;
      const Svd r = svd(c.a, opts);
      EXPECT_EQ(r.scenario, "truncated");
      ASSERT_EQ(r.sigma.size(), kTopK);
      // Leading singular values match the full decomposition's leading
      // block, and the measured rank-k error sits inside the recorded
      // a-posteriori bound.
      for (std::size_t i = 0; i < kTopK; ++i) {
        EXPECT_NEAR(r.sigma[i], c.ref.sigma[i], 1e-3 * c.ref.sigma[0]);
      }
      std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
      ASSERT_GT(r.scenario_bound, 0.0);
      EXPECT_LE(linalg::reconstruction_error(c.a.cast<double>(),
                                             r.u.cast<double>(), sigma,
                                             r.v.cast<double>()),
                r.scenario_bound);
      if (mode == "serial") {
        base = r;
      } else {
        expect_bit_identical(base, r,
                             c.name + " truncated " + mode + " vs serial");
      }
    }
  }
}

TEST(Differential, ScenarioUpdateChainMatchesFromScratchAcrossModes) {
  hsvd::testing::CaseSpec spec;
  spec.cols = 12;
  spec.ratio = 2;
  spec.condition = 1e2;
  spec.seed = harness_seed();
  const linalg::MatrixD a0 = hsvd::testing::generate_case(spec);

  // A fixed chain of three rank-1 updates, drawn once; the from-scratch
  // reference decomposes the accumulated matrix in double.
  constexpr int kChain = 3;
  Rng rng(harness_seed() ^ 0x1d8a7eULL);
  std::vector<linalg::MatrixD> us, vs;
  linalg::MatrixD accumulated = a0;
  for (int step = 0; step < kChain; ++step) {
    us.push_back(linalg::random_gaussian(a0.rows(), 1, rng));
    vs.push_back(linalg::random_gaussian(a0.cols(), 1, rng));
    for (std::size_t cc = 0; cc < a0.cols(); ++cc) {
      for (std::size_t rr = 0; rr < a0.rows(); ++rr) {
        accumulated(rr, cc) += 0.25 * us.back()(rr, 0) * vs.back()(cc, 0);
      }
    }
  }
  DiffCase c;
  c.name = spec.name() + "+chain3";
  c.ref = linalg::reference_svd(accumulated);
  c.a = accumulated.cast<float>();

  Svd base;
  for (const std::string& mode : scenario_modes()) {
    SvdOptions opts = scenario_mode_options(mode);
    scenarios::StreamingSvd stream(a0.cast<float>(), opts);
    for (int step = 0; step < kChain; ++step) {
      std::vector<float> uf(a0.rows()), vf(a0.cols());
      for (std::size_t rr = 0; rr < a0.rows(); ++rr) {
        uf[rr] = static_cast<float>(0.25 * us[static_cast<std::size_t>(step)](rr, 0));
      }
      for (std::size_t cc = 0; cc < a0.cols(); ++cc) {
        vf[cc] = static_cast<float>(vs[static_cast<std::size_t>(step)](cc, 0));
      }
      stream.apply(uf, vf);
    }
    EXPECT_EQ(stream.updates(), kChain);
    const Svd r = stream.current();
    EXPECT_EQ(r.scenario, "update");
    {
      // The update core runs in double off fp32 factors; hold the chain
      // to the same bounds as a direct fp32 decomposition of the
      // accumulated matrix.
      SCOPED_TRACE(c.name + " [update " + mode + "]");
      ASSERT_EQ(r.sigma.size(), c.a.cols());
      EXPECT_LT(sigma_scale_error(r.sigma, c.ref.sigma), 1e-4);
      EXPECT_LT(linalg::orthogonality_error(r.u.cast<double>()), 1e-3);
      EXPECT_LT(linalg::orthogonality_error(r.v.cast<double>()), 1e-3);
      std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
      EXPECT_LT(linalg::reconstruction_error(c.a.cast<double>(),
                                             r.u.cast<double>(), sigma,
                                             r.v.cast<double>()),
                1e-4);
    }
    if (mode == "serial") {
      base = r;
    } else {
      // The initial decomposition is bit-identical across these modes
      // and the chain arithmetic is mode-independent host code, so the
      // chain's endpoint is too (iterations counts the *initial* core
      // sweeps, which also match).
      expect_bit_identical(base, r, c.name + " update " + mode + " vs serial");
    }
  }
}

// ---- Mode: fault-injected with recovery ---------------------------------

TEST(Differential, FaultRecoveryMatchesReferenceAndSerialBits) {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const DiffCase& c = cases()[i];
    for (int s : {1, 2}) {
      SvdOptions opts = case_options(c);
      opts.shards = s;
      opts.fault_retries = 2;
      // Hang a tile the placement provably uses; recovery must mask it,
      // re-place, and deliver factors bit-identical to the clean run.
      accel::HeteroSvdAccelerator probe(*opts.config);
      const versal::TileCoord bad = probe.placement().tasks[0].orth.front()[1];
      versal::FaultPlan plan;
      plan.faults.push_back(
          {versal::FaultKind::kTileHang, bad, 0, 0, 0.0, 1.0});
      versal::FaultInjector injector(plan);
      opts.fault_injector = &injector;
      const Svd r = svd(c.a, opts);
      check_against_reference(c, r, cat("faulted shards=", s));
      EXPECT_GE(r.recovery_attempts, 1)
          << c.name << " shards=" << s << ": the fault never fired";
      expect_bit_identical(serial_result(i), r,
                           cat(c.name, " faulted shards=", s, " vs serial"));
    }
  }
}

}  // namespace
}  // namespace hsvd
