// Tests for the double-precision reference SVD, including parameterized
// sweeps over sizes and conditioning.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::linalg {
namespace {

TEST(ReferenceSvd, RecoversKnownSpectrum) {
  Rng rng(10);
  const std::vector<double> sigma = {4.0, 3.0, 2.0, 1.0};
  MatrixD a = matrix_with_spectrum(6, 4, sigma, rng);
  SvdResult r = reference_svd(a);
  ASSERT_EQ(r.sigma.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(r.sigma[i], sigma[i], 1e-9);
}

TEST(ReferenceSvd, FactorsReconstructInput) {
  Rng rng(11);
  MatrixD a = random_gaussian(10, 8, rng);
  SvdResult r = reference_svd(a);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v), 1e-10);
  EXPECT_LT(orthogonality_error(r.u), 1e-10);
  EXPECT_LT(orthogonality_error(r.v), 1e-10);
}

TEST(ReferenceSvd, SigmaDescendingAndNonnegative) {
  Rng rng(12);
  MatrixD a = random_gaussian(9, 6, rng);
  SvdResult r = reference_svd(a);
  for (std::size_t i = 1; i < r.sigma.size(); ++i)
    EXPECT_LE(r.sigma[i], r.sigma[i - 1]);
  EXPECT_GE(r.sigma.back(), 0.0);
}

TEST(ReferenceSvd, HandlesRankDeficiency) {
  Rng rng(13);
  const std::vector<double> sigma = {2.0, 1.0};  // rank 2 in a 5x4 matrix
  MatrixD a = matrix_with_spectrum(5, 4, sigma, rng);
  SvdResult r = reference_svd(a);
  EXPECT_NEAR(r.sigma[0], 2.0, 1e-9);
  EXPECT_NEAR(r.sigma[1], 1.0, 1e-9);
  EXPECT_NEAR(r.sigma[2], 0.0, 1e-9);
  EXPECT_NEAR(r.sigma[3], 0.0, 1e-9);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v), 1e-9);
}

TEST(ReferenceSvd, IdentityHasUnitSpectrum) {
  SvdResult r = reference_svd(MatrixD::identity(5));
  for (double s : r.sigma) EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_LE(r.sweeps, 2);
}

TEST(ReferenceSvd, RejectsWideMatrices) {
  MatrixD wide(2, 5);
  EXPECT_THROW(reference_svd(wide), std::invalid_argument);
}

struct RefSvdCase {
  std::size_t rows;
  std::size_t cols;
  double condition;
};

class ReferenceSvdSweep : public ::testing::TestWithParam<RefSvdCase> {};

TEST_P(ReferenceSvdSweep, ReconstructsAcrossShapesAndConditioning) {
  const auto& p = GetParam();
  Rng rng(100 + p.rows * 7 + p.cols);
  const auto spectrum = geometric_spectrum(p.cols, p.condition);
  MatrixD a = matrix_with_spectrum(p.rows, p.cols, spectrum, rng);
  SvdResult r = reference_svd(a);
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v), 1e-8);
  EXPECT_LT(spectrum_distance(r.sigma, spectrum), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndConditioning, ReferenceSvdSweep,
    ::testing::Values(RefSvdCase{4, 4, 1.0}, RefSvdCase{8, 8, 10.0},
                      RefSvdCase{16, 16, 1e3}, RefSvdCase{32, 32, 1e6},
                      RefSvdCase{12, 8, 100.0}, RefSvdCase{40, 16, 1e4},
                      RefSvdCase{64, 32, 1e2}, RefSvdCase{33, 7, 50.0}));

}  // namespace
}  // namespace hsvd::linalg
