// Property sweep: the accelerator's functional output must match the
// double-precision reference across the micro-architecture space --
// engine counts that exercise single-band, multi-band, stacked-slot, and
// padded configurations -- plus failure-injection cases.
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "baselines/cpu_reference.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::accel {
namespace {

struct SweepCase {
  std::size_t rows;
  std::size_t cols;
  int p_eng;
  int p_task;
  std::uint64_t seed;
};

class AcceleratorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AcceleratorSweep, FunctionalMatchesReference) {
  const auto& p = GetParam();
  HeteroSvdConfig cfg;
  cfg.rows = p.rows;
  cfg.cols = p.cols;
  cfg.p_eng = p.p_eng;
  cfg.p_task = p.p_task;
  cfg.iterations = 12;
  HeteroSvdAccelerator acc(cfg);

  Rng rng(p.seed);
  std::vector<linalg::MatrixF> batch;
  for (int t = 0; t < p.p_task; ++t) {
    batch.push_back(
        linalg::random_gaussian(p.rows, p.cols, rng).cast<float>());
  }
  auto run = acc.run(batch);
  for (int t = 0; t < p.p_task; ++t) {
    auto ref = linalg::reference_svd(batch[static_cast<std::size_t>(t)].cast<double>());
    std::vector<double> sigma(run.tasks[static_cast<std::size_t>(t)].sigma.begin(),
                              run.tasks[static_cast<std::size_t>(t)].sigma.end());
    EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 2e-4)
        << "task " << t;
    EXPECT_LT(linalg::orthogonality_error(
                  run.tasks[static_cast<std::size_t>(t)].u.cast<double>()),
              1e-3)
        << "task " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MicroArchitectures, AcceleratorSweep,
    ::testing::Values(
        // Single-band, vertically stacked slots (both parities).
        SweepCase{16, 8, 2, 2, 1},
        SweepCase{16, 8, 2, 1, 2},
        // Odd P_eng with padding (cols not divisible).
        SweepCase{20, 10, 3, 1, 3},
        SweepCase{18, 11, 3, 1, 4},
        // Two-band configuration.
        SweepCase{24, 16, 4, 1, 5},
        SweepCase{24, 16, 4, 2, 6},
        // Three-band configuration (the Table II shape, miniaturized).
        SweepCase{32, 32, 8, 1, 7},
        // Five-engine, ill-shaped.
        SweepCase{25, 15, 5, 1, 8},
        // Tall and skinny.
        SweepCase{64, 8, 2, 1, 9},
        // Conditioned spectrum via a different seed mix.
        SweepCase{32, 16, 4, 1, 10}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.rows) + "n" +
             std::to_string(info.param.cols) + "k" +
             std::to_string(info.param.p_eng) + "t" +
             std::to_string(info.param.p_task);
    });

TEST(AcceleratorFailure, ColumnsExceedingTileMemoryThrow) {
  // m = 8192 float columns are 32 KB each: two operand columns cannot
  // coexist in one 32 KB tile memory. The simulator's capacity checks
  // must reject the functional run rather than silently "work".
  HeteroSvdConfig cfg;
  cfg.rows = 8192;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 1;
  HeteroSvdAccelerator acc(cfg);
  Rng rng(99);
  auto a = linalg::random_gaussian(8192, 8, rng).cast<float>();
  EXPECT_THROW(acc.run({a}), std::runtime_error);
}

TEST(AcceleratorFailure, TimedModeSkipsCapacityChecks) {
  // Timing-only estimation carries no payloads and is allowed to model
  // out-of-budget what-if configurations.
  HeteroSvdConfig cfg;
  cfg.rows = 8192;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 1;
  HeteroSvdAccelerator acc(cfg);
  EXPECT_GT(acc.estimate(1).task_seconds, 0.0);
}

TEST(AcceleratorFailure, NaiveStrategyUsesMoreTileMemory) {
  auto peak_for = [](bool relocated) {
    HeteroSvdConfig cfg;
    cfg.rows = 512;
    cfg.cols = 8;
    cfg.p_eng = 2;
    cfg.p_task = 1;
    cfg.iterations = 2;
    cfg.relocated_outputs = relocated;
    HeteroSvdAccelerator acc(cfg);
    Rng rng(55);
    auto a = linalg::random_gaussian(512, 8, rng).cast<float>();
    auto run = acc.run({a});
    return run.stats.dma_bytes;
  };
  // Naive outputs force k-fold more DMA shadow traffic (exactly 2x at
  // k = 2: 2k(k-1) vs 2(k-1) moves per sweep).
  EXPECT_EQ(peak_for(false), 2 * peak_for(true));
}

TEST(CpuReference, ReportsTimingAndConvergence) {
  Rng rng(77);
  auto a = linalg::random_gaussian(24, 12, rng).cast<float>();
  auto r = baselines::run_hestenes(a, jacobi::OrderingKind::kShiftingRing);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_LT(r.max_offdiag_coherence, 1e-5);
  EXPECT_EQ(r.algorithm, "hestenes-shifting-ring");
  auto b = baselines::run_block(a, 4);
  EXPECT_TRUE(b.converged);
  auto c = baselines::run_bcv(a);
  EXPECT_TRUE(c.converged);
  EXPECT_EQ(c.algorithm, "bcv-odd-even");
}

}  // namespace
}  // namespace hsvd::accel
