// Tests for the complex one-sided Jacobi SVD.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "jacobi/complex_hestenes.hpp"
#include "jacobi/hestenes.hpp"

namespace hsvd::jacobi {
namespace {

ComplexMatrix random_complex(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  ComplexMatrix m(rows, cols);
  for (auto& v : m.data()) {
    v = ComplexF{static_cast<float>(rng.gaussian()),
                 static_cast<float>(rng.gaussian())};
  }
  return m;
}

TEST(ComplexHestenes, HermitianHelpers) {
  ComplexMatrix m(2, 2);
  m(0, 0) = {1.0f, 2.0f};
  m(1, 0) = {0.0f, -1.0f};
  m(0, 1) = {3.0f, 0.0f};
  // cdot(x, x) is the squared norm (real).
  const ComplexF g = cdot(m.col(0), m.col(0));
  EXPECT_FLOAT_EQ(g.real(), 6.0f);
  EXPECT_NEAR(g.imag(), 0.0f, 1e-7f);
  EXPECT_FLOAT_EQ(cnorm2(m.col(0)), 6.0f);
  // conj-linearity: cdot(x, y) = conj(cdot(y, x)).
  const ComplexF xy = cdot(m.col(0), m.col(1));
  const ComplexF yx = cdot(m.col(1), m.col(0));
  EXPECT_NEAR(xy.real(), yx.real(), 1e-6f);
  EXPECT_NEAR(xy.imag(), -yx.imag(), 1e-6f);
}

TEST(ComplexHestenes, DecomposesRandomMatrix) {
  auto a = random_complex(12, 8, 71);
  auto r = complex_hestenes_svd(a);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(complex_orthogonality_error(r.u), 1e-3);
  EXPECT_LT(complex_orthogonality_error(r.v), 1e-3);
  EXPECT_LT(complex_reconstruction_error(a, r.u, r.sigma, r.v), 1e-5);
  for (std::size_t i = 1; i < r.sigma.size(); ++i)
    EXPECT_LE(r.sigma[i], r.sigma[i - 1]);
}

TEST(ComplexHestenes, RealInputMatchesRealPath) {
  // A real-valued complex matrix must produce the same spectrum as the
  // real algorithm.
  Rng rng(72);
  ComplexMatrix a(10, 6);
  linalg::MatrixF ar(10, 6);
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < 10; ++i) {
      const float x = static_cast<float>(rng.gaussian());
      a(i, j) = {x, 0.0f};
      ar(i, j) = x;
    }
  }
  auto rc = complex_hestenes_svd(a);
  jacobi::HestenesOptions real_opts;
  auto rr = hestenes_svd(ar, real_opts);
  for (std::size_t t = 0; t < 6; ++t)
    EXPECT_NEAR(rc.sigma[t], rr.sigma[t], 1e-3f) << t;
}

TEST(ComplexHestenes, UnitaryInvariance) {
  // Multiplying a column by a unit phase must not change the spectrum.
  auto a = random_complex(8, 4, 73);
  auto b = a;
  const ComplexF phase = std::polar(1.0f, 1.1f);
  for (std::size_t i = 0; i < 8; ++i) b(i, 2) *= phase;
  auto ra = complex_hestenes_svd(a);
  auto rb = complex_hestenes_svd(b);
  for (std::size_t t = 0; t < 4; ++t)
    EXPECT_NEAR(ra.sigma[t], rb.sigma[t], 1e-4f);
}

TEST(ComplexHestenes, AllOrderingsAgree) {
  auto a = random_complex(16, 8, 74);
  std::vector<float> base;
  for (auto kind : {OrderingKind::kRing, OrderingKind::kRoundRobin,
                    OrderingKind::kShiftingRing}) {
    ComplexHestenesOptions opts;
    opts.ordering = kind;
    auto r = complex_hestenes_svd(a, opts);
    if (base.empty()) {
      base = r.sigma;
    } else {
      for (std::size_t t = 0; t < base.size(); ++t)
        EXPECT_NEAR(r.sigma[t], base[t], 1e-3f) << to_string(kind);
    }
  }
}

TEST(ComplexHestenes, FixedSweepsAndValidation) {
  auto a = random_complex(8, 4, 75);
  ComplexHestenesOptions opts;
  opts.fixed_sweeps = 5;
  EXPECT_EQ(complex_hestenes_svd(a, opts).sweeps, 5);
  opts.accumulate_v = false;
  auto r = complex_hestenes_svd(a, opts);
  EXPECT_TRUE(r.v.empty());
  EXPECT_THROW(complex_hestenes_svd(random_complex(4, 8, 1)),
               std::invalid_argument);
  EXPECT_THROW(complex_hestenes_svd(random_complex(8, 5, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hsvd::jacobi
