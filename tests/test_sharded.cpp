// Multi-array sharding engine tests (DESIGN.md section 11): the block
// ring distribution, the inter-shard edge pricing, bit-identity of the
// sharded factors against the single-array path, merged reporting,
// fault recovery across shards, and the DSE's multi-array points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "accel/accelerator.hpp"
#include "accel/sharded.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "jacobi/block.hpp"
#include "jacobi/movement.hpp"
#include "jacobi/ordering.hpp"
#include "linalg/generators.hpp"
#include "perfmodel/perf_model.hpp"
#include "shard/merge.hpp"
#include "shard/model.hpp"
#include "shard/topology.hpp"

namespace hsvd {
namespace {

accel::HeteroSvdConfig sharded_config(std::size_t rows, std::size_t cols,
                                      int p_eng) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.p_eng = p_eng;
  cfg.p_task = 1;
  cfg.iterations = 4;
  return cfg;
}

std::vector<linalg::MatrixF> gaussian_batch(std::size_t rows, std::size_t cols,
                                            int n, std::uint64_t seed) {
  std::vector<linalg::MatrixF> batch;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    batch.push_back(linalg::random_gaussian(rows, cols, rng).cast<float>());
  }
  return batch;
}

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- Block ring schedule -------------------------------------------------

// The padded block tournament is a valid round-robin: disjoint pairs in
// every round, and every block pair covered exactly once per sweep.
TEST(BlockRingSchedule, IsAValidTournament) {
  for (int blocks : {2, 3, 4, 5, 8, 10}) {
    const auto schedule = jacobi::block_ring_schedule(blocks);
    const int p = blocks % 2 == 0 ? blocks : blocks + 1;
    EXPECT_EQ(schedule.size(), static_cast<std::size_t>(p - 1));
    std::set<std::pair<int, int>> seen;
    for (const auto& round : schedule) {
      EXPECT_EQ(round.size(), static_cast<std::size_t>(p / 2));
      std::set<int> in_round;
      for (const auto& pair : round) {
        EXPECT_TRUE(in_round.insert(pair.left).second);
        EXPECT_TRUE(in_round.insert(pair.right).second);
        auto key = std::minmax(pair.left, pair.right);
        EXPECT_TRUE(seen.insert({key.first, key.second}).second);
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(p * (p - 1) / 2));
  }
}

// The sharded engine's round sequence must be the single-array engine's
// round sequence (same pair sets, round by round): rotations across
// rounds do not commute, so this is what makes sharded factors
// bit-identical to the single-array path.
TEST(BlockRingSchedule, MatchesSingleArrayBlockRounds) {
  for (int blocks : {2, 3, 4, 5, 8, 9}) {
    const auto ring = jacobi::block_ring_schedule(blocks);
    const auto rounds = jacobi::block_pair_rounds(blocks);
    ASSERT_EQ(ring.size(), rounds.size()) << "blocks=" << blocks;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      std::set<std::pair<int, int>> ring_pairs;
      for (const auto& pair : ring[r]) {
        if (pair.left >= blocks || pair.right >= blocks) continue;  // bye
        auto key = std::minmax(pair.left, pair.right);
        ring_pairs.insert({key.first, key.second});
      }
      std::set<std::pair<int, int>> round_pairs;
      for (const auto& [u, v] : rounds[r]) {
        auto key = std::minmax(u, v);
        round_pairs.insert({key.first, key.second});
      }
      EXPECT_EQ(ring_pairs, round_pairs) << "blocks=" << blocks << " r=" << r;
    }
  }
}

TEST(ShardTopology, SlotAssignmentIsBlockCyclic) {
  for (int shards : {1, 2, 3, 4}) {
    for (int slot = 0; slot < 12; ++slot) {
      EXPECT_EQ(jacobi::shard_of_slot(slot, shards), slot % shards);
      EXPECT_EQ(shard::home_shard(slot, shards), slot % shards);
    }
  }
}

TEST(ShardTopology, SingleShardHasNoInterShardMoves) {
  for (int blocks : {2, 4, 8, 9}) {
    EXPECT_EQ(shard::inter_shard_block_moves_per_sweep(blocks, 1), 0);
  }
  EXPECT_GT(shard::inter_shard_block_moves_per_sweep(8, 2), 0);
  EXPECT_GT(shard::inter_shard_block_moves_per_sweep(8, 4), 0);
}

TEST(ShardTopology, ShardedMovesAnnotateCrossings) {
  const auto schedule = jacobi::block_ring_schedule(8);
  const int shards = 2;
  int crossings = 0;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    const std::size_t r_next = (r + 1) % schedule.size();
    for (const auto& mv : jacobi::sharded_moves_between(
             schedule, static_cast<int>(r), static_cast<int>(r_next), shards)) {
      EXPECT_GE(mv.from_shard, 0);
      EXPECT_LT(mv.from_shard, shards);
      EXPECT_GE(mv.to_shard, 0);
      EXPECT_LT(mv.to_shard, shards);
      if (mv.crosses_shards()) ++crossings;
    }
  }
  EXPECT_EQ(crossings, shard::inter_shard_block_moves_per_sweep(8, shards));
}

// ---- Inter-shard link pricing -------------------------------------------

TEST(InterShardLink, HopCostsEgressNocAndIngress) {
  const auto dev = versal::vck190();
  const double bytes = 64 * 1024.0;
  const double hop = shard::InterShardLink::hop_seconds(dev, 230e6, bytes);
  // The hop must cost at least each leg on its own: AIE->PL egress,
  // the NoC/DDR traversal, and the PL->AIE ingress.
  EXPECT_GT(hop, bytes / dev.plio_aie_to_pl_bytes_per_s);
  EXPECT_GT(hop, bytes / dev.ddr_bytes_per_s + dev.ddr_latency_s);
  EXPECT_GT(hop, bytes / dev.plio_pl_to_aie_bytes_per_s);
  EXPECT_LT(hop, 1.0);  // and stay physical
}

TEST(InterShardLink, TransfersSerializeOnTheEdge) {
  const auto dev = versal::vck190();
  shard::InterShardLink link(2, dev, 230e6);
  const double bytes = 4096.0;
  const double first = link.transfer(0, 1, 0.0, bytes);
  EXPECT_GT(first, 0.0);
  // A second transfer on the same edge queues behind the first.
  const double second = link.transfer(0, 1, 0.0, bytes);
  EXPECT_GT(second, first);
  EXPECT_EQ(link.transfers(), 2u);
  EXPECT_EQ(link.bytes_moved(), static_cast<std::uint64_t>(2 * bytes));
  // reset_time clears the queues: the same transfer prices identically.
  link.reset_time();
  EXPECT_EQ(link.transfer(0, 1, 0.0, bytes), first);
}

// ---- Sharded execution: bit-identity ------------------------------------

// S = 1 delegates to the inner engine: the whole RunResult -- factors,
// timings, counters -- is bit-identical to the pre-existing
// single-array path.
TEST(ShardedAccelerator, SingleShardIsBitIdenticalToSingleArray) {
  const auto cfg = sharded_config(48, 32, 4);
  const auto batch = gaussian_batch(48, 32, 3, 77);

  accel::HeteroSvdAccelerator plain(cfg);
  const accel::RunResult a = plain.run(batch);
  accel::ShardedAccelerator sharded(cfg, 1);
  const accel::RunResult b = sharded.run(batch);

  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  EXPECT_EQ(a.batch_seconds, b.batch_seconds);
  EXPECT_EQ(a.task_seconds, b.task_seconds);
  EXPECT_EQ(a.throughput_tasks_per_s, b.throughput_tasks_per_s);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_TRUE(same_bits(a.tasks[i].u, b.tasks[i].u));
    EXPECT_TRUE(same_bits(a.tasks[i].sigma, b.tasks[i].sigma));
    EXPECT_EQ(a.tasks[i].start_seconds, b.tasks[i].start_seconds);
    EXPECT_EQ(a.tasks[i].end_seconds, b.tasks[i].end_seconds);
    EXPECT_EQ(a.tasks[i].iterations, b.tasks[i].iterations);
  }
  EXPECT_EQ(a.stats.dma_bytes, b.stats.dma_bytes);
  EXPECT_EQ(a.stats.stream_bytes, b.stats.stream_bytes);
  EXPECT_EQ(a.stats.kernel_invocations, b.stats.kernel_invocations);
}

// S > 1 distributes the tournament but never reorders arithmetic within
// a round (pairs are disjoint), so U and sigma stay bit-identical to
// the single-array run; only the simulated timeline changes.
TEST(ShardedAccelerator, FactorsBitIdenticalForEveryShardCount) {
  const auto cfg = sharded_config(48, 32, 4);  // 4 blocks
  const auto batch = gaussian_batch(48, 32, 2, 1234);

  accel::HeteroSvdAccelerator plain(cfg);
  const accel::RunResult base = plain.run(batch);
  for (int s : {2, 4}) {
    accel::ShardedAccelerator sharded(cfg, s);
    const accel::RunResult run = sharded.run(batch);
    ASSERT_EQ(run.tasks.size(), base.tasks.size()) << "S=" << s;
    for (std::size_t i = 0; i < base.tasks.size(); ++i) {
      EXPECT_TRUE(same_bits(base.tasks[i].u, run.tasks[i].u))
          << "S=" << s << " task " << i;
      EXPECT_TRUE(same_bits(base.tasks[i].sigma, run.tasks[i].sigma))
          << "S=" << s << " task " << i;
      EXPECT_EQ(base.tasks[i].iterations, run.tasks[i].iterations);
    }
    // The inter-shard edge showed up in the timeline.
    ASSERT_NE(sharded.link(), nullptr);
    EXPECT_GT(sharded.link()->transfers(), 0u);
  }
}

// Convergence decisions survive the distribution: a precision-mode run
// terminates after the same number of sweeps for every shard count
// (per-shard coherence maxima merge into the single-array maximum).
TEST(ShardedAccelerator, PrecisionModeConvergesIdentically) {
  auto cfg = sharded_config(40, 24, 3);  // odd block count: phantom bye
  cfg.precision = 1e-6;
  const auto batch = gaussian_batch(40, 24, 1, 5);

  accel::HeteroSvdAccelerator plain(cfg);
  const accel::RunResult base = plain.run(batch);
  for (int s : {2, 4}) {
    accel::ShardedAccelerator sharded(cfg, s);
    const accel::RunResult run = sharded.run(batch);
    EXPECT_EQ(run.tasks[0].iterations, base.tasks[0].iterations) << "S=" << s;
    EXPECT_EQ(run.tasks[0].converged, base.tasks[0].converged);
    EXPECT_TRUE(same_bits(base.tasks[0].u, run.tasks[0].u)) << "S=" << s;
    EXPECT_TRUE(same_bits(base.tasks[0].sigma, run.tasks[0].sigma));
  }
}

// The host fan-out over shards touches disjoint state, so the result is
// identical for any host thread count.
TEST(ShardedAccelerator, ThreadCountInvariant) {
  auto cfg = sharded_config(48, 32, 4);
  const auto batch = gaussian_batch(48, 32, 2, 99);

  cfg.host_threads = 1;
  accel::ShardedAccelerator serial(cfg, 2);
  const accel::RunResult a = serial.run(batch);
  cfg.host_threads = 4;
  accel::ShardedAccelerator wide(cfg, 2);
  const accel::RunResult b = wide.run(batch);

  EXPECT_EQ(a.batch_seconds, b.batch_seconds);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_TRUE(same_bits(a.tasks[i].u, b.tasks[i].u));
    EXPECT_TRUE(same_bits(a.tasks[i].sigma, b.tasks[i].sigma));
    EXPECT_EQ(a.tasks[i].end_seconds, b.tasks[i].end_seconds);
  }
}

// ---- Merged reporting ----------------------------------------------------

TEST(ShardedAccelerator, UtilizationStacksShardsSideBySide) {
  const auto cfg = sharded_config(48, 32, 4);
  const auto batch = gaussian_batch(48, 32, 1, 42);

  accel::HeteroSvdAccelerator plain(cfg);
  const accel::RunResult base = plain.run(batch);
  accel::ShardedAccelerator sharded(cfg, 2);
  const accel::RunResult run = sharded.run(batch);

  EXPECT_EQ(run.utilization.rows, base.utilization.rows);
  EXPECT_EQ(run.utilization.cols, 2 * base.utilization.cols);
  EXPECT_EQ(run.utilization.tiles.size(),
            static_cast<std::size_t>(run.utilization.rows) *
                static_cast<std::size_t>(run.utilization.cols));
  // Both arrays did kernel work, so both halves light up.
  EXPECT_GT(run.stats.kernel_invocations, 0u);
}

TEST(ShardMerge, StatsSumElementWise) {
  versal::ArrayStats a;
  a.neighbour_transfers = 1;
  a.dma_transfers = 2;
  a.dma_bytes = 3;
  a.stream_packets = 4;
  a.stream_bytes = 5;
  a.kernel_invocations = 6;
  versal::ArrayStats b = a;
  const auto sum = shard::merge_stats({a, b});
  EXPECT_EQ(sum.neighbour_transfers, 2u);
  EXPECT_EQ(sum.dma_transfers, 4u);
  EXPECT_EQ(sum.dma_bytes, 6u);
  EXPECT_EQ(sum.stream_packets, 8u);
  EXPECT_EQ(sum.stream_bytes, 10u);
  EXPECT_EQ(sum.kernel_invocations, 12u);
}

// Sharded resources report S arrays plus the 2S link PLIOs.
TEST(ShardedAccelerator, ResourcesCoverAllArrays) {
  const auto cfg = sharded_config(48, 32, 4);
  accel::HeteroSvdAccelerator plain(cfg);
  const accel::RunResult base = plain.run(gaussian_batch(48, 32, 1, 7));
  accel::ShardedAccelerator sharded(cfg, 2);
  const accel::RunResult run = sharded.run(gaussian_batch(48, 32, 1, 7));
  EXPECT_EQ(run.resources.aie_total(), 2 * base.resources.aie_total());
  EXPECT_EQ(run.resources.plio, 2 * base.resources.plio + 4);
  EXPECT_EQ(run.resources.uram, 2 * base.resources.uram);
}

// ---- Faults across shards ------------------------------------------------

TEST(ShardedAccelerator, HungTileOnShardZeroIsMaskedAndRecovered) {
  const auto cfg = sharded_config(48, 32, 4);
  const auto batch = gaussian_batch(48, 32, 3, 900);

  accel::ShardedAccelerator sharded(cfg, 2);
  const versal::TileCoord bad =
      sharded.array(0).placement().tasks[0].orth.front()[1];
  versal::FaultPlan plan;
  plan.faults.push_back(
      {versal::FaultKind::kTileHang, bad, 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  sharded.attach_faults(&injector);

  const accel::RunResult run = sharded.run(batch);
  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_GE(run.recovery_runs, 1);
  // Recovered factors match a fault-free sharded run bit-for-bit.
  accel::ShardedAccelerator clean(cfg, 2);
  const accel::RunResult ref = clean.run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(same_bits(ref.tasks[i].u, run.tasks[i].u)) << "task " << i;
    EXPECT_TRUE(same_bits(ref.tasks[i].sigma, run.tasks[i].sigma));
  }
}

// ---- Analytic model ------------------------------------------------------

TEST(ShardedModel, SingleShardReproducesTheSingleArrayModel) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 256;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  cfg.iterations = 6;
  cfg.pl_frequency_hz = 208.3e6;
  const auto single = perf::PerformanceModel{}.evaluate(cfg, 1);
  const auto sharded = shard::evaluate_sharded(cfg, single, 1, 1);
  EXPECT_EQ(sharded.moves_per_sweep, 0);
  EXPECT_DOUBLE_EQ(sharded.edge_seconds_per_sweep, 0.0);
  EXPECT_DOUBLE_EQ(sharded.t_iter, single.t_iter);
  EXPECT_DOUBLE_EQ(sharded.t_ddr, single.t_ddr);
  EXPECT_DOUBLE_EQ(sharded.t_norm_stage, single.t_norm_stage);
  EXPECT_DOUBLE_EQ(sharded.t_task, single.t_task);
  EXPECT_DOUBLE_EQ(sharded.t_sys, single.t_sys);
}

TEST(ShardedModel, EdgeTermAppearsForMultipleShards) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 512;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  cfg.iterations = 6;
  cfg.pl_frequency_hz = 208.3e6;
  const auto single = perf::PerformanceModel{}.evaluate(cfg, 1);
  const auto s2 = shard::evaluate_sharded(cfg, single, 2, 1);
  EXPECT_GT(s2.moves_per_sweep, 0);
  EXPECT_GT(s2.edge_seconds_per_sweep, 0.0);
  EXPECT_GT(s2.hop_seconds, 0.0);
  // The round-streaming term halves, so t_iter net of the edge shrinks.
  EXPECT_LT(s2.t_iter - s2.edge_seconds_per_sweep, single.t_iter);
}

// ---- DSE co-exploration --------------------------------------------------

TEST(ShardedDse, MaxShardsAddsMultiArrayPoints) {
  dse::DseRequest req;
  req.rows = req.cols = 64;
  req.batch = 1;
  req.threads = 1;
  req.max_shards = 4;
  const auto points = dse::DesignSpaceExplorer{}.enumerate(req);
  ASSERT_FALSE(points.empty());
  std::set<int> shard_counts;
  for (const auto& p : points) shard_counts.insert(p.shards);
  EXPECT_TRUE(shard_counts.count(1));
  EXPECT_TRUE(shard_counts.count(2));
  EXPECT_TRUE(shard_counts.count(4));

  // The single-array subset is exactly the max_shards = 1 enumeration.
  dse::DseRequest plain = req;
  plain.max_shards = 1;
  const auto single = dse::DesignSpaceExplorer{}.enumerate(plain);
  std::size_t s1 = 0;
  for (const auto& p : points) s1 += p.shards == 1 ? 1 : 0;
  EXPECT_EQ(s1, single.size());
  for (const auto& p : points) {
    if (p.shards != 1) continue;
    const auto match = std::find_if(
        single.begin(), single.end(), [&](const dse::DesignPoint& q) {
          return q.p_eng == p.p_eng && q.p_task == p.p_task &&
                 q.latency_seconds == p.latency_seconds &&
                 q.throughput_tasks_per_s == p.throughput_tasks_per_s;
        });
    EXPECT_NE(match, single.end())
        << "S=1 point (" << p.p_eng << "," << p.p_task << ") changed";
  }
}

TEST(ShardedDse, CheckpointRoundTripsShardedPoints) {
  const std::string path = ::testing::TempDir() + "dse_shards.ckpt";
  std::remove(path.c_str());
  dse::DseRequest req;
  req.rows = req.cols = 64;
  req.batch = 1;
  req.threads = 1;
  req.max_shards = 2;
  req.checkpoint_path = path;
  dse::DesignSpaceExplorer explorer;
  const auto first = explorer.enumerate(req);
  const auto replay = explorer.enumerate(req);
  ASSERT_EQ(first.size(), replay.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].shards, replay[i].shards);
    EXPECT_EQ(first[i].latency_seconds, replay[i].latency_seconds);
    EXPECT_EQ(first[i].resources.plio, replay[i].resources.plio);
  }
  std::remove(path.c_str());
}

// ---- Host budget ---------------------------------------------------------

TEST(HostBudget, RejectsOversubscribedCombinations) {
  const int hw = common::ThreadPool::hardware_threads();
  EXPECT_NO_THROW(validate_host_budget(0, 1));
  EXPECT_NO_THROW(validate_host_budget(1, 1));
  EXPECT_THROW(validate_host_budget(hw, hw + 1), InputError);
  EXPECT_THROW(validate_host_budget(hw + 1, hw + 1), InputError);
  EXPECT_THROW(validate_host_budget(-1, 1), InputError);
  EXPECT_THROW(validate_host_budget(0, 0), InputError);
}

// ---- Facade routing ------------------------------------------------------

TEST(ShardedFacade, OptionsRouteThroughTheShardedEngine) {
  Rng rng(31);
  const linalg::MatrixF a =
      linalg::random_gaussian(32, 24, rng).cast<float>();
  SvdOptions plain;
  plain.threads = 1;
  const Svd base = svd(a, plain);
  for (int s : {1, 2}) {
    SvdOptions opts;
    opts.threads = 1;
    opts.shards = s;
    const Svd out = svd(a, opts);
    EXPECT_TRUE(same_bits(base.u, out.u)) << "S=" << s;
    EXPECT_TRUE(same_bits(base.sigma, out.sigma)) << "S=" << s;
    EXPECT_TRUE(same_bits(base.v, out.v)) << "S=" << s;
    EXPECT_EQ(base.iterations, out.iterations);
  }
  SvdOptions bad;
  bad.shards = 0;
  EXPECT_THROW(svd(a, bad), InputError);
}

TEST(ShardedFacade, BatchReportsShardCount) {
  const auto batch = gaussian_batch(32, 24, 2, 11);
  SvdOptions opts;
  opts.threads = 1;
  opts.shards = 2;
  const BatchSvd out = svd_batch(batch, opts);
  EXPECT_EQ(out.shards, 2);
  EXPECT_EQ(out.failed_tasks, 0);
  for (const auto& r : out.results) EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace hsvd
