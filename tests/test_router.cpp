// Tests for the SLO-aware cost-model router (DESIGN.md section 14): the
// paper's crossover as a live dispatch policy, memoization per (shape,
// slo-class), feasibility recomputation against each request's actual
// bounds, the facade routing seam (including bit-identity of the aie pin
// with the classic path), routed batches, route.* metrics, and routed
// requests through the serving layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "backend/router.hpp"
#include "backend/slo.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/reference_svd.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace hsvd {
namespace {

using backend::make_backends;
using backend::RouteDecision;
using backend::Router;
using backend::Slo;
using backend::SloKind;

Slo latency_slo(double deadline = 0.0) {
  Slo slo;
  slo.deadline_seconds = deadline;
  return slo;
}

Slo throughput_slo(int batch = 16) {
  Slo slo;
  slo.kind = SloKind::kThroughput;
  slo.batch = batch;
  return slo;
}

Slo energy_slo() {
  Slo slo;
  slo.kind = SloKind::kEnergy;
  return slo;
}

const backend::Candidate* candidate(const RouteDecision& decision,
                                    const char* name) {
  for (const auto& c : decision.candidates) {
    if (name == std::string(c.backend->name())) return &c;
  }
  return nullptr;
}

linalg::MatrixF gaussian(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

// Max singular-value error relative to the reference spectrum's scale.
double sigma_scale_error(const std::vector<float>& got,
                         const std::vector<double>& ref) {
  const double scale = std::max(ref.empty() ? 0.0 : ref.front(), 1e-12);
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size() && i < ref.size(); ++i) {
    worst = std::max(worst, std::fabs(got[i] - ref[i]) / scale);
  }
  return worst;
}

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

// ---- the crossover as a dispatch policy -----------------------------------

// Tables II/III/VI: the AIE array wins small-n latency (1.05x over the
// FPGA baseline already at n = 128), the GPU W-cycle baseline wins
// large-n throughput, and the fabric cannot place very large problems
// at all. The router must reproduce exactly that policy from the cost
// models alone.
TEST(RouterCrossover, AieWinsSmallLatencyGpuWinsLargeThroughput) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  for (std::size_t n : {64u, 128u, 256u}) {
    const RouteDecision d = router.route(n, n, latency_slo(), SvdOptions{});
    EXPECT_EQ(d.backend, "aie") << "latency winner at n=" << n;
  }
  for (std::size_t n : {2048u, 4096u}) {
    const RouteDecision d = router.route(n, n, throughput_slo(), SvdOptions{});
    EXPECT_EQ(d.backend, "gpu-wcycle") << "throughput winner at n=" << n;
    // The AIE candidate is not merely beaten there -- no placement fits
    // the device, which is the paper's hard size wall.
    const backend::Candidate* aie = candidate(d, "aie");
    ASSERT_NE(aie, nullptr);
    EXPECT_FALSE(aie->estimate.feasible);
  }
  // Past the size wall the latency objective falls to the FPGA
  // comparator's fitted model.
  EXPECT_EQ(router.route(2048, 2048, latency_slo(), SvdOptions{}).backend,
            "fpga-bcv");
}

TEST(RouterCrossover, EnergyObjectiveSkipsBackendsWithoutAModel) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  const RouteDecision d = router.route(64, 64, energy_slo(), SvdOptions{});
  // Table II publishes no FPGA power figure, so the energy objective
  // must never pick (or even mark feasible) the fpga-bcv backend.
  EXPECT_NE(d.backend, "fpga-bcv");
  EXPECT_FALSE(d.backend.empty());
  const backend::Candidate* fpga = candidate(d, "fpga-bcv");
  ASSERT_NE(fpga, nullptr);
  EXPECT_FALSE(fpga->slo_feasible);
}

// ---- memoization ----------------------------------------------------------

TEST(RouterMemo, HitPerShapeAndSloClass) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  EXPECT_FALSE(router.route(96, 96, latency_slo(), SvdOptions{}).memo_hit);
  EXPECT_TRUE(router.route(96, 96, latency_slo(), SvdOptions{}).memo_hit);
  // Deadlines are excluded from the memo class: they change feasibility
  // flags, not which backend wins, so the scored candidates are reused.
  EXPECT_TRUE(router.route(96, 96, latency_slo(0.5), SvdOptions{}).memo_hit);
  // A different objective is a different class.
  EXPECT_FALSE(router.route(96, 96, energy_slo(), SvdOptions{}).memo_hit);
  EXPECT_TRUE(router.route(96, 96, energy_slo(), SvdOptions{}).memo_hit);
  // A different shape is a different entry.
  EXPECT_FALSE(router.route(96, 64, latency_slo(), SvdOptions{}).memo_hit);
}

TEST(RouterMemo, FeasibilityRecomputedAgainstTheActualDeadline) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  // An impossible deadline: the router still dispatches the best-
  // objective backend (degrade, don't fail), but every candidate is
  // marked SLO-infeasible.
  const RouteDecision tight =
      router.route(64, 64, latency_slo(1e-12), SvdOptions{});
  EXPECT_EQ(tight.backend, "aie");
  for (const auto& c : tight.candidates) EXPECT_FALSE(c.slo_feasible);
  // The same memoized candidates, re-flagged under a generous deadline.
  const RouteDecision loose =
      router.route(64, 64, latency_slo(10.0), SvdOptions{});
  EXPECT_TRUE(loose.memo_hit);
  EXPECT_EQ(loose.backend, "aie");
  const backend::Candidate* aie = candidate(loose, "aie");
  ASSERT_NE(aie, nullptr);
  EXPECT_TRUE(aie->slo_feasible);
}

TEST(RouterMemo, FindByNameAndUnknownThrows) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  EXPECT_STREQ(router.find("cpu").name(), "cpu");
  EXPECT_STREQ(router.find("gpu-wcycle").name(), "gpu-wcycle");
  EXPECT_THROW(router.find("tpu"), InputError);
  EXPECT_THROW(router.find(""), InputError);
}

// ---- facade routing -------------------------------------------------------

TEST(RouterFacade, PinnedCpuProducesCorrectFactorsWithProvenance) {
  const linalg::MatrixF a = gaussian(24, 16, 2001);
  const auto ref = linalg::reference_svd(a.cast<double>());
  SvdOptions options;
  options.backend = "cpu";
  const Svd r = svd(a, options);
  ASSERT_EQ(r.status, SvdStatus::kOk);
  EXPECT_EQ(r.backend, "cpu");
  EXPECT_FALSE(r.modeled_time);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_LT(sigma_scale_error(r.sigma, ref.sigma), 5e-5);
}

TEST(RouterFacade, AutoRoutesSmallLatencyRequestToAie) {
  const linalg::MatrixF a = gaussian(64, 64, 2002);
  SvdOptions options;
  options.backend = "auto";
  const Svd r = svd(a, options);
  ASSERT_EQ(r.status, SvdStatus::kOk);
  EXPECT_EQ(r.backend, "aie");
  // The AIE path reports simulated accelerator time, never a model.
  EXPECT_GT(r.accelerator_seconds, 0.0);
  EXPECT_FALSE(r.modeled_time);
}

TEST(RouterFacade, PinnedAieIsBitIdenticalToTheClassicPath) {
  const linalg::MatrixF a = gaussian(32, 24, 2003);
  SvdOptions options;
  options.config = accel::HeteroSvdConfig{};
  options.config->rows = a.rows();
  options.config->cols = a.cols();
  options.config->p_eng = 4;
  options.config->p_task = 1;
  options.config->iterations = 6;
  options.config->pipeline = accel::PipelineMode::kOff;
  options.threads = 1;
  const Svd classic = svd(a, options);

  SvdOptions routed = options;
  routed.backend = "aie";
  const Svd pinned = svd(a, routed);
  EXPECT_EQ(pinned.backend, "aie");
  // Factors AND the simulated timeline: the pin adds provenance labels,
  // nothing else.
  EXPECT_TRUE(same_bits(classic.u, pinned.u));
  EXPECT_TRUE(same_bits(classic.v, pinned.v));
  ASSERT_EQ(classic.sigma.size(), pinned.sigma.size());
  EXPECT_EQ(0, std::memcmp(classic.sigma.data(), pinned.sigma.data(),
                           classic.sigma.size() * sizeof(float)));
  EXPECT_EQ(classic.iterations, pinned.iterations);
  EXPECT_EQ(classic.accelerator_seconds, pinned.accelerator_seconds);
}

// ---- routed batches -------------------------------------------------------

TEST(RouterBatch, PinnedCpuBatchFansOutOnTheHost) {
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 3; ++i) batch.push_back(gaussian(24, 16, 2100 + i));
  SvdOptions options;
  options.backend = "cpu";
  const BatchSvd out = svd_batch(batch, options);
  EXPECT_EQ(out.backend, "cpu");
  EXPECT_EQ(out.failed_tasks, 0);
  EXPECT_GT(out.batch_seconds, 0.0);
  EXPECT_GT(out.throughput_tasks_per_s, 0.0);
  ASSERT_EQ(out.results.size(), 3u);
  for (const auto& r : out.results) {
    EXPECT_EQ(r.status, SvdStatus::kOk);
    EXPECT_EQ(r.backend, "cpu");
    EXPECT_GT(r.wall_seconds, 0.0);
  }
}

TEST(RouterBatch, AutoBatchRoutesToAieBitIdenticalToClassic) {
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 4; ++i) batch.push_back(gaussian(32, 16, 2200 + i));
  SvdOptions options;
  options.threads = 1;
  const BatchSvd classic = svd_batch(batch, options);

  SvdOptions routed = options;
  routed.backend = "auto";
  const BatchSvd out = svd_batch(batch, routed);
  EXPECT_EQ(out.backend, "aie");
  ASSERT_EQ(out.results.size(), classic.results.size());
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    EXPECT_EQ(out.results[i].backend, "aie");
    EXPECT_TRUE(same_bits(classic.results[i].u, out.results[i].u))
        << "task " << i;
  }
  EXPECT_EQ(classic.batch_seconds, out.batch_seconds);
}

TEST(RouterBatch, PinnedModeledBackendReportsModelThroughputForTheBatch) {
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 2; ++i) batch.push_back(gaussian(24, 16, 2300 + i));
  SvdOptions options;
  options.backend = "gpu-wcycle";
  const BatchSvd out = svd_batch(batch, options);
  EXPECT_EQ(out.backend, "gpu-wcycle");
  ASSERT_EQ(out.results.size(), 2u);
  for (const auto& r : out.results) {
    EXPECT_EQ(r.status, SvdStatus::kOk);
    EXPECT_TRUE(r.modeled_time);
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
  // Honesty rule: the batch throughput comes from the Table III model,
  // never from the host wall clock that actually ran the factors.
  EXPECT_GT(out.throughput_tasks_per_s, 0.0);
  EXPECT_NEAR(out.batch_seconds, 2.0 / out.throughput_tasks_per_s, 1e-12);
}

// ---- route.* metrics ------------------------------------------------------

TEST(RouterMetrics, DispatchMemoAndEstimateErrorRecorded) {
  obs::ObsContext observer;
  // A shape no other test routes, so the process-wide router's memo is
  // provably cold on the first call.
  const linalg::MatrixF a = gaussian(88, 40, 2400);
  SvdOptions options;
  options.backend = "auto";
  options.observer = &observer;
  (void)svd(a, options);
  auto snap = observer.metrics().snapshot();
  EXPECT_EQ(snap.counters["route.memo.miss"], 1u);
  EXPECT_EQ(snap.counters["route.dispatch.aie"], 1u);

  (void)svd(a, options);
  snap = observer.metrics().snapshot();
  EXPECT_EQ(snap.counters["route.memo.hit"], 1u);

  SvdOptions pinned;
  pinned.backend = "cpu";
  pinned.observer = &observer;
  (void)svd(a, pinned);
  snap = observer.metrics().snapshot();
  EXPECT_EQ(snap.counters["route.pinned"], 1u);
  EXPECT_EQ(snap.counters["route.dispatch.cpu"], 1u);
  // Estimate-vs-actual error is recorded for every backend whose result
  // carries an independently measured time (simulated seconds on the
  // AIE, wall seconds on the CPU) -- three routed runs above.
  ASSERT_EQ(snap.histograms.count("route.estimate.rel_error"), 1u);
  EXPECT_EQ(snap.histograms["route.estimate.rel_error"].total, 3u);
}

// ---- the serving layer ----------------------------------------------------

TEST(RouterServer, RoutedRequestsCarryProvenanceAndCorrectFactors) {
  serve::ServerOptions options;
  options.workers = 1;
  serve::SvdServer server(options);

  const linalg::MatrixF a = gaussian(24, 16, 2500);
  const auto ref = linalg::reference_svd(a.cast<double>());

  serve::Request pin_cpu;
  pin_cpu.matrix = a;
  pin_cpu.backend = "cpu";
  const serve::Response cpu = server.serve(std::move(pin_cpu));
  ASSERT_EQ(cpu.status, serve::ServeStatus::kOk);
  EXPECT_EQ(cpu.backend, "cpu");
  EXPECT_EQ(cpu.result.backend, "cpu");
  EXPECT_LT(sigma_scale_error(cpu.result.sigma, ref.sigma), 5e-5);

  serve::Request pin_fpga;
  pin_fpga.matrix = a;
  pin_fpga.backend = "fpga-bcv";
  const serve::Response fpga = server.serve(std::move(pin_fpga));
  ASSERT_EQ(fpga.status, serve::ServeStatus::kOk);
  EXPECT_EQ(fpga.backend, "fpga-bcv");
  EXPECT_TRUE(fpga.result.modeled_time);
  EXPECT_LT(sigma_scale_error(fpga.result.sigma, ref.sigma), 5e-5);

  // Auto-routing through the server: at n = 64 the crossover says the
  // AIE array wins latency (below that the host flops model can win).
  const linalg::MatrixF b = gaussian(64, 64, 2501);
  const auto ref_b = linalg::reference_svd(b.cast<double>());
  serve::Request routed;
  routed.matrix = b;
  routed.backend = "auto";
  const serve::Response automatic = server.serve(std::move(routed));
  ASSERT_EQ(automatic.status, serve::ServeStatus::kOk);
  EXPECT_EQ(automatic.backend, "aie");
  EXPECT_LT(sigma_scale_error(automatic.result.sigma, ref_b.sigma), 5e-5);
}

TEST(RouterServer, RouteIntentSeparatesTheResultCacheIdentity) {
  serve::ServerOptions options;
  options.workers = 1;
  serve::TenantConfig tenant;
  tenant.name = "default";
  options.qos.tenants = {tenant};
  options.qos.cache_enabled = true;
  serve::SvdServer server(options);

  const linalg::MatrixF a = gaussian(24, 16, 2600);
  const auto submit_pinned = [&](const char* backend) {
    serve::Request request;
    request.matrix = a;
    request.backend = backend;
    return server.serve(std::move(request));
  };

  const serve::Response first = submit_pinned("cpu");
  ASSERT_EQ(first.status, serve::ServeStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.backend, "cpu");

  // The identical matrix under the identical route intent: served from
  // the cache, provenance preserved.
  const serve::Response repeat = submit_pinned("cpu");
  ASSERT_EQ(repeat.status, serve::ServeStatus::kOk);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.backend, "cpu");

  // The same matrix pinned elsewhere must NOT hit the cpu entry: the
  // cache key includes the route intent.
  const serve::Response other = submit_pinned("fpga-bcv");
  ASSERT_EQ(other.status, serve::ServeStatus::kOk);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_EQ(other.backend, "fpga-bcv");
  EXPECT_TRUE(other.result.modeled_time);
}

}  // namespace
}  // namespace hsvd
