// Property tests for the generated case matrix (tests/case_matrix.hpp):
// the grid is exactly the requested cross product, every spec draws a
// bit-identical matrix from its seed, and the realized spectrum --
// condition number, decay profile, rank deficiency -- matches the
// requested one under the double-precision reference SVD.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>

#include "case_matrix.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd {
namespace {

using testing::CaseAxes;
using testing::CaseSpec;
using testing::Decay;

bool same_bits(const linalg::MatrixD& a, const linalg::MatrixD& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

TEST(CaseMatrix, GridIsTheFullCrossProduct) {
  CaseAxes axes;
  const auto specs = testing::case_matrix(axes, 1);
  EXPECT_EQ(specs.size(), axes.cols.size() * axes.ratios.size() *
                              axes.conditions.size() * axes.decays.size() *
                              axes.deficiencies.size());
  // Every grid point gets a unique reproduction name and a unique seed.
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const CaseSpec& spec : specs) {
    names.insert(spec.name());
    seeds.insert(spec.mixed_seed());
  }
  EXPECT_EQ(names.size(), specs.size());
  EXPECT_EQ(seeds.size(), specs.size());
}

TEST(CaseMatrix, SameSpecDrawsBitIdenticalMatrices) {
  CaseSpec spec;
  spec.cols = 12;
  spec.ratio = 4;
  spec.condition = 1e4;
  spec.decay = Decay::kGeometric;
  spec.seed = 42;
  const linalg::MatrixD a = testing::generate_case(spec);
  const linalg::MatrixD b = testing::generate_case(spec);
  EXPECT_TRUE(same_bits(a, b));
  // Changing any one axis changes the draw.
  CaseSpec other = spec;
  other.seed = 43;
  EXPECT_FALSE(same_bits(a, testing::generate_case(other)));
  other = spec;
  other.decay = Decay::kStep;
  EXPECT_FALSE(same_bits(a, testing::generate_case(other)));
}

// The realized spectrum equals the requested one to double roundoff:
// the construction multiplies orthonormal factors, it does not hope a
// random draw lands near the target.
TEST(CaseMatrix, RealizedSpectrumMatchesRequest) {
  for (Decay decay : {Decay::kGeometric, Decay::kHarmonic, Decay::kStep}) {
    for (std::size_t deficiency : {std::size_t{0}, std::size_t{4}}) {
      CaseSpec spec;
      spec.cols = 16;
      spec.ratio = 8;
      spec.condition = 1e5;
      spec.decay = decay;
      spec.deficiency = deficiency;
      spec.seed = 7;
      SCOPED_TRACE(spec.name());
      const auto requested = testing::case_spectrum(spec);
      const auto ref = linalg::reference_svd(testing::generate_case(spec));
      ASSERT_EQ(ref.sigma.size(), spec.cols);
      for (std::size_t i = 0; i < spec.cols; ++i) {
        EXPECT_NEAR(ref.sigma[i], requested[i], 1e-10)
            << "sigma[" << i << "]";
      }
      // Realized condition over the nonzero part.
      const std::size_t live = spec.cols - deficiency;
      EXPECT_NEAR(ref.sigma[0] / ref.sigma[live - 1], spec.condition,
                  1e-6 * spec.condition);
      // Deficiency means *exact* zeros, not merely small values.
      for (std::size_t i = live; i < spec.cols; ++i) {
        EXPECT_LT(ref.sigma[i], 1e-10);
      }
    }
  }
}

TEST(CaseMatrix, DegenerateCornersGenerate) {
  // Square (ratio 1), the minimal two-column shape, and a spectrum with
  // a single live value (deficiency = cols - 1).
  CaseSpec square;
  square.cols = 10;
  square.ratio = 1;
  square.seed = 3;
  const linalg::MatrixD sq = testing::generate_case(square);
  EXPECT_EQ(sq.rows(), sq.cols());

  CaseSpec tiny;
  tiny.cols = 2;
  tiny.ratio = 32;
  tiny.condition = 1.0;  // flat spectrum
  tiny.seed = 3;
  const linalg::MatrixD t = testing::generate_case(tiny);
  EXPECT_EQ(t.rows(), 64u);
  EXPECT_EQ(t.cols(), 2u);

  CaseSpec rank1;
  rank1.cols = 8;
  rank1.ratio = 2;
  rank1.deficiency = 7;
  rank1.seed = 3;
  const auto ref = linalg::reference_svd(testing::generate_case(rank1));
  EXPECT_NEAR(ref.sigma[0], 1.0, 1e-10);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_LT(ref.sigma[i], 1e-10);

  // Invalid corners are rejected, not silently clamped.
  CaseSpec bad;
  bad.cols = 8;
  bad.deficiency = 8;
  EXPECT_THROW(testing::case_spectrum(bad), InputError);
  bad.deficiency = 0;
  bad.condition = 0.5;
  EXPECT_THROW(testing::case_spectrum(bad), InputError);
}

}  // namespace
}  // namespace hsvd
