// Tests for SVD orderings: tournament validity (property-based across
// sizes and kinds) plus the structural facts Fig. 3 relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "jacobi/ordering.hpp"

namespace hsvd::jacobi {
namespace {

TEST(Ordering, RejectsOddOrTinyColumnCounts) {
  EXPECT_THROW(make_schedule(OrderingKind::kRing, 5), std::invalid_argument);
  EXPECT_THROW(make_schedule(OrderingKind::kRing, 0), std::invalid_argument);
  EXPECT_THROW(make_schedule(OrderingKind::kShiftingRing, 7),
               std::invalid_argument);
}

TEST(Ordering, TwoColumnsSingleRound) {
  for (auto kind : {OrderingKind::kRing, OrderingKind::kRoundRobin,
                    OrderingKind::kShiftingRing}) {
    auto s = make_schedule(kind, 2);
    ASSERT_EQ(s.size(), 1u);
    ASSERT_EQ(s[0].size(), 1u);
    auto [lo, hi] = std::minmax(s[0][0].left, s[0][0].right);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1);
  }
}

TEST(Ordering, ShapeIsRoundsByEngines) {
  auto s = make_schedule(OrderingKind::kShiftingRing, 6);
  EXPECT_EQ(s.size(), 5u);  // 2k-1 rounds
  for (const auto& round : s) EXPECT_EQ(round.size(), 3u);  // k engines
}

TEST(Ordering, ShiftingRingIsAPermutationOfRingRows) {
  // Same pairs per round, different slot assignment: the shift only
  // permutes the row (Fig. 3(b) vs (a)).
  const int n = 8;
  auto ring = make_schedule(OrderingKind::kRing, n);
  auto shifting = make_schedule(OrderingKind::kShiftingRing, n);
  ASSERT_EQ(ring.size(), shifting.size());
  for (std::size_t r = 0; r < ring.size(); ++r) {
    std::multiset<std::pair<int, int>> a, b;
    for (const auto& p : ring[r]) a.insert(std::minmax(p.left, p.right));
    for (const auto& p : shifting[r]) b.insert(std::minmax(p.left, p.right));
    EXPECT_EQ(a, b) << "round " << r;
  }
}

TEST(Ordering, ShiftingRingShiftAmountsFollowFloorHalf) {
  // Row i (1-indexed) is the ring row shifted right by floor(i/2) mod k.
  const int n = 10;
  const int k = n / 2;
  auto ring = make_schedule(OrderingKind::kRing, n);
  auto shifting = make_schedule(OrderingKind::kShiftingRing, n);
  for (std::size_t r = 0; r < ring.size(); ++r) {
    const int shift = (static_cast<int>(r + 1) / 2) % k;
    for (int slot = 0; slot < k; ++slot) {
      EXPECT_EQ(shifting[r][static_cast<std::size_t>((slot + shift) % k)],
                ring[r][static_cast<std::size_t>(slot)])
          << "round " << r << " slot " << slot;
    }
  }
}

TEST(Ordering, KindNames) {
  EXPECT_EQ(to_string(OrderingKind::kRing), "ring");
  EXPECT_EQ(to_string(OrderingKind::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(OrderingKind::kShiftingRing), "shifting-ring");
}

TEST(Ordering, ValidatorCatchesBrokenSchedules) {
  auto s = make_schedule(OrderingKind::kRing, 6);
  EXPECT_TRUE(is_valid_tournament(s, 6));
  auto dup = s;
  dup[1] = dup[0];  // duplicate round -> pairs repeat
  EXPECT_FALSE(is_valid_tournament(dup, 6));
  auto clipped = s;
  clipped.pop_back();
  EXPECT_FALSE(is_valid_tournament(clipped, 6));
  auto self_pair = s;
  self_pair[0][0] = {2, 2};
  EXPECT_FALSE(is_valid_tournament(self_pair, 6));
  auto out_of_range = s;
  out_of_range[0][0] = {0, 6};
  EXPECT_FALSE(is_valid_tournament(out_of_range, 6));
}

// Property sweep: every ordering kind yields a valid tournament for all
// even sizes up to 64 (covers the paper's P_eng range and beyond).
class OrderingProperty
    : public ::testing::TestWithParam<std::tuple<OrderingKind, int>> {};

TEST_P(OrderingProperty, IsValidTournament) {
  const auto [kind, n] = GetParam();
  auto s = make_schedule(kind, n);
  EXPECT_TRUE(is_valid_tournament(s, n))
      << to_string(kind) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllSizes, OrderingProperty,
    ::testing::Combine(::testing::Values(OrderingKind::kRing,
                                         OrderingKind::kRoundRobin,
                                         OrderingKind::kShiftingRing),
                       ::testing::Values(2, 4, 6, 8, 10, 12, 16, 22, 32, 64)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_n" +
                         std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hsvd::jacobi
