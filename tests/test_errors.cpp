// Tests for the typed error taxonomy (common/error.hpp), the facade's
// input validation, non-convergence reporting, and exception behaviour
// of the host thread pool under concurrent failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "accel/pl_modules.hpp"
#include "accel/placement.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"

namespace hsvd {
namespace {

linalg::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

// --- taxonomy ----------------------------------------------------------

TEST(ErrorTaxonomy, TypedErrorsKeepStandardBaseClasses) {
  // Every typed error stays catchable by the standard class pre-existing
  // callers (and tests) already handle.
  static_assert(std::is_base_of_v<std::invalid_argument, InputError>);
  static_assert(std::is_base_of_v<InputError, PlacementError>);
  static_assert(std::is_base_of_v<std::runtime_error, ConvergenceError>);
  static_assert(std::is_base_of_v<std::runtime_error, FaultDetected>);
  static_assert(std::is_base_of_v<Error, InputError>);
  static_assert(std::is_base_of_v<Error, ConvergenceError>);
  static_assert(std::is_base_of_v<Error, FaultDetected>);

  EXPECT_STREQ(InputError("x").kind(), "input");
  EXPECT_STREQ(PlacementError("x").kind(), "placement");
  EXPECT_STREQ(ConvergenceError("x").kind(), "convergence");
  EXPECT_STREQ(FaultDetected("x").kind(), "fault");
}

TEST(ErrorTaxonomy, FaultDetectedCarriesTileAttribution) {
  FaultDetected plain("no tile");
  EXPECT_FALSE(plain.has_tile());
  FaultDetected at("hang", 3, 17);
  ASSERT_TRUE(at.has_tile());
  EXPECT_EQ(at.tile_row(), 3);
  EXPECT_EQ(at.tile_col(), 17);
  EXPECT_STREQ(at.what(), "hang");
}

TEST(ErrorTaxonomy, StatusNames) {
  EXPECT_STREQ(to_string(SvdStatus::kOk), "ok");
  EXPECT_STREQ(to_string(SvdStatus::kNotConverged), "not-converged");
  EXPECT_STREQ(to_string(SvdStatus::kFailed), "failed");
}

TEST(ErrorTaxonomy, RequireThrowsTypedInputError) {
  const auto fails = [] { HSVD_REQUIRE(1 == 2, "one is not two"); };
  EXPECT_THROW(fails(), InputError);
  EXPECT_THROW(fails(), std::invalid_argument);  // legacy contract
  try {
    fails();
    FAIL() << "HSVD_REQUIRE did not throw";
  } catch (const InputError& e) {
    // The diagnostic carries both the human message and the expression.
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTaxonomy, PlacementFailureIsTypedAndLegacyCatchable) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 128;
  cfg.p_eng = 11;
  cfg.p_task = 26;  // far beyond the device
  EXPECT_THROW(accel::place(cfg), PlacementError);
  EXPECT_THROW(accel::place(cfg), std::invalid_argument);
}

// --- facade validation -------------------------------------------------

TEST(ErrorFacade, SvdRejectsNonFiniteInput) {
  auto a = random_matrix(12, 8, 700);
  a(3, 2) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(svd(a), InputError);
  a(3, 2) = std::numeric_limits<float>::infinity();
  try {
    svd(a);
    FAIL() << "svd accepted an Inf entry";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("(3, 2)"), std::string::npos);
  }
}

TEST(ErrorFacade, BatchValidationNamesTheOffendingMatrix) {
  std::vector<linalg::MatrixF> batch;
  EXPECT_THROW(svd_batch(batch), InputError);  // empty batch

  batch.push_back(random_matrix(12, 8, 701));
  batch.push_back(random_matrix(10, 8, 702));  // shape mismatch
  EXPECT_THROW(svd_batch(batch), InputError);
  EXPECT_THROW(svd_batch(batch), std::invalid_argument);

  batch[1] = random_matrix(12, 8, 703);
  batch[1](0, 0) = std::numeric_limits<float>::quiet_NaN();
  try {
    svd_batch(batch);
    FAIL() << "svd_batch accepted a NaN entry";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("batch[1]"), std::string::npos);
  }
}

TEST(ErrorFacade, DeriveVRejectsNonFiniteSigma) {
  auto a = random_matrix(8, 4, 704);
  linalg::MatrixF u(8, 2);
  u(0, 0) = 1;
  u(1, 1) = 1;
  std::vector<float> sigma = {1.0f,
                              std::numeric_limits<float>::quiet_NaN()};
  EXPECT_THROW(derive_v(a, u, sigma), InputError);
}

// --- non-convergence reporting ------------------------------------------

TEST(ErrorFacade, UnreachablePrecisionReportsNotConverged) {
  auto a = random_matrix(12, 8, 705);
  SvdOptions options;
  options.precision = 1e-300;  // unreachable in float arithmetic
  options.want_v = false;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  options.config = cfg;
  const Svd r = svd(a, options);  // NOT an exception: factors are usable
  EXPECT_EQ(r.status, SvdStatus::kNotConverged);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.message.empty());
  EXPECT_GT(r.iterations, 1);
  EXPECT_FALSE(r.u.empty());
}

TEST(ErrorFacade, ConvergedRunReportsOkStatus) {
  auto a = random_matrix(12, 8, 706);
  SvdOptions options;
  options.want_v = false;
  const Svd r = svd(a, options);
  EXPECT_EQ(r.status, SvdStatus::kOk);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.message.empty());
  EXPECT_EQ(r.recovery_attempts, 0);
}

// --- convergence watchdog ------------------------------------------------

TEST(ErrorWatchdog, TripsOnlyAfterConsecutiveStalledSweeps) {
  accel::SystemModule system(1e-12);
  const auto sweep = [&](double rate) {
    system.begin_iteration();
    system.observe_pair(rate);
    system.end_iteration();
  };
  // Healthy convergence: each sweep shrinks the coherence.
  double rate = 1.0;
  for (int i = 0; i < 8; ++i) {
    sweep(rate);
    rate *= 0.5;
    EXPECT_FALSE(system.stalled());
  }
  // Plateau: the first flat sweep is still an improvement over the last
  // halved one (it resets the counter); the next stall_limit() repeats
  // must all stall before the watchdog trips.
  sweep(rate);
  for (int i = 0; i < accel::SystemModule::stall_limit(); ++i) {
    EXPECT_FALSE(system.stalled());
    sweep(rate);
  }
  EXPECT_TRUE(system.stalled());
  // One improving sweep resets the watchdog.
  sweep(rate * 0.1);
  EXPECT_FALSE(system.stalled());
  EXPECT_EQ(system.stalled_sweeps(), 0);
}

// --- thread pool under concurrent failures -------------------------------

TEST(ErrorThreadPool, ConcurrentExceptionsPropagateAndPoolSurvives) {
  auto& pool = common::ThreadPool::shared();
  std::atomic<int> ran{0};
  const auto faulty = [&](std::size_t i) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (i % 2 == 0) {
      throw FaultDetected("injected failure", static_cast<int>(i), 0);
    }
  };
  EXPECT_THROW(pool.parallel_for(16, 4, faulty), FaultDetected);
  EXPECT_THROW(pool.parallel_for(16, 4, faulty), std::runtime_error);

  // The pool is not poisoned: a clean parallel_for still completes and
  // visits every index exactly once.
  std::atomic<int> sum{0};
  pool.parallel_for(64, 4, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  EXPECT_GE(ran.load(), 2);
}

}  // namespace
}  // namespace hsvd
