// Tests for the verified-compute layer (DESIGN.md section 15): the
// VerifyPolicy selection contract, the tiered ResultVerifier, the
// escalation ladder (re-run -> re-route -> host reference) end-to-end
// through the facade with injected silent errors, the result cache's
// attestation bookkeeping, and the router's per-backend health ledger
// (quarantine, half-open probes, memo invalidation, verify-off
// bit-identical routing).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "backend/router.hpp"
#include "backend/slo.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/result_cache.hpp"
#include "verify/escalate.hpp"
#include "verify/policy.hpp"
#include "verify/verifier.hpp"
#include "versal/faults.hpp"

namespace hsvd {
namespace {

using backend::make_backends;
using backend::RouteDecision;
using backend::Router;
using backend::Slo;
using common::FakeClock;
using verify::parse_verify_policy;
using verify::VerifyMode;
using verify::VerifyPolicy;
using verify::VerifyRung;
using verify::VerifyTier;

linalg::MatrixF gaussian(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// One-shot silent corruption of task slot 0's returned factors: fires on
// the `ordinal`th finished result for that slot, invisible to every
// dataflow detection point.
versal::FaultPlan silent_plan(std::uint64_t seed,
                              std::initializer_list<std::uint64_t> ordinals) {
  versal::FaultPlan plan;
  plan.seed = seed;
  for (const std::uint64_t after_op : ordinals) {
    versal::FaultSpec spec;
    spec.kind = versal::FaultKind::kSilentError;
    spec.slot = 0;
    spec.tile = versal::TileCoord{0, 0};
    spec.after_op = after_op;
    plan.faults.push_back(spec);
  }
  return plan;
}

const backend::Candidate* candidate(const RouteDecision& decision,
                                    const char* name) {
  for (const auto& c : decision.candidates) {
    if (name == std::string(c.backend->name())) return &c;
  }
  return nullptr;
}

SvdOptions verify_on() {
  SvdOptions options;
  options.verify = parse_verify_policy("always");
  return options;
}

// ---- policy parsing and selection -----------------------------------------

TEST(VerifyPolicy, ParseRoundTrip) {
  EXPECT_EQ(parse_verify_policy("off").mode, VerifyMode::kOff);
  EXPECT_FALSE(parse_verify_policy("off").enabled());
  EXPECT_EQ(parse_verify_policy("always").mode, VerifyMode::kAlways);
  EXPECT_TRUE(parse_verify_policy("always").enabled());

  const VerifyPolicy sampled = parse_verify_policy("sample:0.25:42");
  EXPECT_EQ(sampled.mode, VerifyMode::kSample);
  EXPECT_DOUBLE_EQ(sampled.sample_rate, 0.25);
  EXPECT_EQ(sampled.seed, 42u);

  for (const char* spec : {"off", "always", "sample:0.5", "sample:0.25:42"}) {
    const VerifyPolicy parsed = parse_verify_policy(spec);
    EXPECT_EQ(parse_verify_policy(verify::to_string(parsed)).mode, parsed.mode)
        << spec;
    EXPECT_EQ(verify::to_string(parsed), spec);
  }
}

TEST(VerifyPolicy, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_verify_policy("sometimes"), InputError);
  EXPECT_THROW(parse_verify_policy("sample:"), InputError);
  EXPECT_THROW(parse_verify_policy("sample:zero"), InputError);
  EXPECT_THROW(parse_verify_policy("sample:0"), InputError);
  EXPECT_THROW(parse_verify_policy("sample:1.5"), InputError);
  EXPECT_THROW(parse_verify_policy("sample:0.5:4x"), InputError);

  VerifyPolicy policy;
  policy.mode = VerifyMode::kSample;
  policy.sample_rate = 0.0;
  EXPECT_THROW(policy.validate(), InputError);
  policy.sample_rate = 2.0;
  EXPECT_THROW(policy.validate(), InputError);
  policy.sample_rate = 1.0;
  EXPECT_NO_THROW(policy.validate());
}

TEST(VerifyPolicy, SelectionIsDeterministicAndSeeded) {
  VerifyPolicy off;
  VerifyPolicy always = parse_verify_policy("always");
  VerifyPolicy half = parse_verify_policy("sample:0.5:7");
  int selected = 0;
  for (std::uint64_t ident = 0; ident < 512; ++ident) {
    EXPECT_FALSE(off.selects(ident));
    EXPECT_TRUE(always.selects(ident));
    // Pure function of (policy, ident): replays agree.
    EXPECT_EQ(half.selects(ident), half.selects(ident));
    if (half.selects(ident)) ++selected;
  }
  // A 0.5 rate over 512 idents lands near half (loose envelope: the
  // point is the hash is not degenerate, not a statistics proof).
  EXPECT_GT(selected, 512 / 4);
  EXPECT_LT(selected, 512 * 3 / 4);

  // Rate 1.0 selects everything; a different seed reshuffles the draw.
  VerifyPolicy full = parse_verify_policy("sample:1.0");
  VerifyPolicy reseeded = half;
  reseeded.seed = 8;
  bool differs = false;
  for (std::uint64_t ident = 0; ident < 512; ++ident) {
    EXPECT_TRUE(full.selects(ident));
    differs = differs || (half.selects(ident) != reseeded.selects(ident));
  }
  EXPECT_TRUE(differs);
}

// ---- tiered verifier ------------------------------------------------------

TEST(VerifyVerifier, CleanResultPassesWithinBounds) {
  const linalg::MatrixF a = gaussian(48, 32, 101);
  const Svd result = svd(a);
  const verify::ResultVerifier verifier(SvdOptions{}.precision);
  const verify::VerifyOutcome out = verifier.check(a, result);
  EXPECT_TRUE(out.passed) << out.note;
  ASSERT_GE(out.u_orth, 0.0);
  EXPECT_LE(out.u_orth, out.orth_bound);
  ASSERT_GE(out.v_orth, 0.0);
  EXPECT_LE(out.v_orth, out.v_orth_bound);
  ASSERT_GE(out.residual, 0.0);
  EXPECT_LE(out.residual, out.residual_bound);
}

TEST(VerifyVerifier, CheapTierCatchesNonFiniteAndDisorder) {
  const linalg::MatrixF a = gaussian(32, 24, 102);
  const Svd clean = svd(a);
  const verify::ResultVerifier verifier(SvdOptions{}.precision);

  Svd nan_sigma = clean;
  nan_sigma.sigma[0] = std::nanf("");
  verify::VerifyOutcome out = verifier.check(a, nan_sigma);
  EXPECT_FALSE(out.passed);
  EXPECT_EQ(out.failed_tier, VerifyTier::kCheap);

  Svd disordered = clean;
  // Shrinking the leading value below its neighbour breaks the
  // descending invariant without touching finiteness.
  disordered.sigma[0] = disordered.sigma[1] * 0.5f;
  out = verifier.check(a, disordered);
  EXPECT_FALSE(out.passed);
  EXPECT_EQ(out.failed_tier, VerifyTier::kCheap);
}

TEST(VerifyVerifier, MediumTierCatchesOrthogonalityLoss) {
  const linalg::MatrixF a = gaussian(32, 24, 103);
  Svd corrupted = svd(a);
  corrupted.u(0, 0) += 0.5f;
  const verify::ResultVerifier verifier(SvdOptions{}.precision);
  const verify::VerifyOutcome out = verifier.check(a, corrupted);
  EXPECT_FALSE(out.passed);
  EXPECT_EQ(out.failed_tier, VerifyTier::kMedium);
  EXPECT_GT(out.u_orth, out.orth_bound);
}

TEST(VerifyVerifier, FullTierCatchesSigmaScaling) {
  const linalg::MatrixF a = gaussian(32, 24, 104);
  Svd corrupted = svd(a);
  // Doubling sigma[0] keeps the factors finite, descending, and
  // orthonormal -- exactly the silent corruption only the residual
  // tier can see (V here was derived from the uncorrupted spectrum).
  corrupted.sigma[0] *= 2.0f;
  const verify::ResultVerifier verifier(SvdOptions{}.precision);
  const verify::VerifyOutcome out = verifier.check(a, corrupted);
  EXPECT_FALSE(out.passed);
  EXPECT_EQ(out.failed_tier, VerifyTier::kFull);
  EXPECT_GT(out.residual, out.residual_bound);
}

TEST(VerifyVerifier, BoundsScaleWithPrecisionAndFloorAtEps) {
  const double loose = verify::ResultVerifier::orthogonality_bound(32, 1e-3);
  const double tight = verify::ResultVerifier::orthogonality_bound(32, 1e-6);
  EXPECT_GT(loose, tight);
  // Precision below fp32 eps floors at the 32*eps envelope instead of
  // demanding the impossible from single-precision factors.
  EXPECT_GT(verify::ResultVerifier::orthogonality_bound(32, 0.0), 0.0);
  EXPECT_GT(verify::ResultVerifier::residual_bound(32, 0.0), 0.0);
  EXPECT_GT(verify::ResultVerifier::v_orthogonality_bound(32, 1e-6),
            verify::ResultVerifier::orthogonality_bound(32, 1e-6));
}

// ---- the ladder through the facade ----------------------------------------

TEST(VerifyFacade, OffIsBitIdenticalAndUnchecked) {
  const linalg::MatrixF a = gaussian(48, 32, 105);
  const Svd off = svd(a);
  EXPECT_FALSE(off.verify_report.checked);
  EXPECT_EQ(off.verify_report.rung, VerifyRung::kNone);
  EXPECT_TRUE(off.verify_report.attempts.empty());

  // A healthy result under `always` is the same result: attestation
  // reads the factors, it never rewrites a passing answer.
  const Svd attested = svd(a, verify_on());
  EXPECT_TRUE(same_bits(off.u, attested.u));
  EXPECT_TRUE(same_bits(off.sigma, attested.sigma));
  EXPECT_TRUE(same_bits(off.v, attested.v));
  EXPECT_TRUE(attested.verify_report.checked);
  EXPECT_TRUE(attested.verify_report.verified);
  EXPECT_EQ(attested.verify_report.rung, VerifyRung::kPrimary);
  ASSERT_EQ(attested.verify_report.attempts.size(), 1u);
  EXPECT_FALSE(attested.verify_report.escalated());
}

TEST(VerifyFacade, SampledSelectionAgreesAcrossReplays) {
  SvdOptions options;
  options.verify = parse_verify_policy("sample:0.5:7");
  for (std::uint64_t seed = 106; seed < 110; ++seed) {
    const linalg::MatrixF a = gaussian(32, 24, seed);
    const bool expected =
        options.verify.selects(verify::verify_ident(a));
    const Svd first = svd(a, options);
    const Svd second = svd(a, options);
    EXPECT_EQ(first.verify_report.checked, expected) << "seed " << seed;
    EXPECT_EQ(second.verify_report.checked, expected) << "seed " << seed;
  }
}

TEST(VerifyFacade, SilentErrorEscalatesToRerun) {
  const linalg::MatrixF a = gaussian(48, 32, 111);
  const Svd clean = svd(a);

  versal::FaultInjector injector(silent_plan(0xfeedf00d, {0}));
  SvdOptions options = verify_on();
  options.fault_injector = &injector;
  const Svd attested = svd(a, options);

  // The corruption fired on the primary execution...
  EXPECT_EQ(injector.event_count(), 1u);
  // ...the primary check failed, and the re-run (same backend, trigger
  // already consumed) verified clean.
  EXPECT_TRUE(attested.verify_report.checked);
  EXPECT_TRUE(attested.verify_report.verified);
  EXPECT_TRUE(attested.verify_report.escalated());
  EXPECT_EQ(attested.verify_report.rung, VerifyRung::kRerun);
  ASSERT_EQ(attested.verify_report.attempts.size(), 2u);
  EXPECT_FALSE(attested.verify_report.attempts[0].outcome.passed);
  EXPECT_TRUE(attested.verify_report.attempts[1].outcome.passed);
  // The re-run repeats the classic execution verbatim: the caller gets
  // the bit-identical clean factors despite the corruption.
  EXPECT_TRUE(same_bits(clean.u, attested.u));
  EXPECT_TRUE(same_bits(clean.sigma, attested.sigma));
}

TEST(VerifyFacade, RepeatedSilentErrorEscalatesToReroute) {
  const linalg::MatrixF a = gaussian(48, 32, 112);
  // Corrupt the primary execution AND its re-run (result ordinals 0 and
  // 1 of slot 0); the ladder must leave the fault domain entirely.
  versal::FaultInjector injector(silent_plan(0xdecafbad, {0, 1}));
  SvdOptions options = verify_on();
  options.fault_injector = &injector;
  const Svd attested = svd(a, options);

  EXPECT_EQ(injector.event_count(), 2u);
  EXPECT_TRUE(attested.verify_report.verified);
  EXPECT_EQ(attested.verify_report.rung, VerifyRung::kReroute);
  ASSERT_EQ(attested.verify_report.attempts.size(), 3u);
  EXPECT_FALSE(attested.verify_report.attempts[0].outcome.passed);
  EXPECT_FALSE(attested.verify_report.attempts[1].outcome.passed);
  EXPECT_TRUE(attested.verify_report.attempts[2].outcome.passed);
  // The classic path's alternate is the host cpu backend, outside the
  // injector's fault domain.
  EXPECT_EQ(attested.verify_report.attempts[2].backend, "cpu");
  EXPECT_EQ(attested.backend, "cpu");
}

TEST(VerifyFacade, LadderFallsBackToHostReference) {
  const linalg::MatrixF a = gaussian(32, 24, 113);
  Svd corrupted = svd(a);
  corrupted.sigma[0] *= 2.0f;

  std::vector<std::pair<std::string, bool>> health_log;
  verify::EscalationHooks hooks;
  hooks.primary_backend = "aie";
  hooks.rerun = []() -> Svd { throw std::runtime_error("rerun unavailable"); };
  hooks.reroute = [](std::string* used) -> Svd {
    *used = "cpu";
    throw std::runtime_error("reroute unavailable");
  };
  hooks.health = [&](const std::string& backend, bool ok) {
    health_log.emplace_back(backend, ok);
  };

  const Svd out =
      verify::attest_result(a, verify_on(), std::move(corrupted), hooks);
  EXPECT_TRUE(out.verify_report.verified);
  EXPECT_EQ(out.verify_report.rung, VerifyRung::kReference);
  EXPECT_EQ(out.backend, "reference");
  ASSERT_EQ(out.verify_report.attempts.size(), 4u);
  EXPECT_FALSE(out.verify_report.attempts[0].outcome.passed);
  // Throwing rungs are recorded, not fatal: the ladder continues.
  EXPECT_NE(out.verify_report.attempts[1].outcome.note.find("rung raised"),
            std::string::npos);
  EXPECT_NE(out.verify_report.attempts[2].outcome.note.find("rung raised"),
            std::string::npos);
  EXPECT_TRUE(out.verify_report.attempts[3].outcome.passed);
  // Every rung fed the health ledger: the primary failure, the rerun
  // failure (same backend), and the reroute failure under its name.
  const std::vector<std::pair<std::string, bool>> expected = {
      {"aie", false}, {"aie", false}, {"cpu", false}};
  EXPECT_EQ(health_log, expected);
}

TEST(VerifyFacade, UncheckedPathStillFeedsHealth) {
  const linalg::MatrixF a = gaussian(32, 24, 114);
  const Svd clean = svd(a);

  std::vector<std::pair<std::string, bool>> health_log;
  verify::EscalationHooks hooks;
  hooks.primary_backend = "aie";
  hooks.health = [&](const std::string& backend, bool ok) {
    health_log.emplace_back(backend, ok);
  };

  // Policy off: the result comes back untouched (bit-identity), but the
  // execution outcome still reaches the error budget.
  const Svd out = verify::attest_result(a, SvdOptions{}, clean, hooks);
  EXPECT_FALSE(out.verify_report.checked);
  EXPECT_TRUE(same_bits(clean.u, out.u));
  const std::vector<std::pair<std::string, bool>> expected = {{"aie", true}};
  EXPECT_EQ(health_log, expected);
}

TEST(VerifyFacade, BatchAttestsEveryTask) {
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t seed = 115; seed < 118; ++seed) {
    batch.push_back(gaussian(32, 24, seed));
  }
  const BatchSvd out = svd_batch(batch, verify_on());
  for (const Svd& r : out.results) {
    EXPECT_TRUE(r.verify_report.checked);
    EXPECT_TRUE(r.verify_report.verified);
    EXPECT_EQ(r.verify_report.rung, VerifyRung::kPrimary);
  }
}

TEST(VerifyFacade, WideInputReportsSwappedFactorScores) {
  // Wide matrices run transposed; the report must describe the factors
  // the caller receives, so the U/V scores are swapped back.
  const linalg::MatrixF a = gaussian(24, 32, 119);
  const Svd attested = svd(a, verify_on());
  EXPECT_TRUE(attested.verify_report.checked);
  EXPECT_TRUE(attested.verify_report.verified);
  EXPECT_EQ(attested.verify_report.rung, VerifyRung::kPrimary);
  ASSERT_EQ(attested.verify_report.attempts.size(), 1u);
  const verify::VerifyOutcome& out = attested.verify_report.attempts[0].outcome;
  EXPECT_LE(out.u_orth, out.orth_bound);
  EXPECT_LE(out.residual, out.residual_bound);
}

// ---- result-cache attestation bookkeeping ---------------------------------

TEST(VerifyCache, TracksVerifiedEntriesAndEviction) {
  serve::ResultCache cache(4);
  const linalg::MatrixF a = gaussian(16, 8, 120);
  const std::uint64_t digest = serve::ResultCache::digest(a);

  Svd unattested;
  unattested.status = SvdStatus::kOk;
  unattested.sigma = {2.0f, 1.0f};
  cache.insert(a, digest, unattested);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().verified_entries, 0u);

  // Re-verifying an unattested hit stamps the stored entry in place.
  verify::VerifyReport report;
  report.checked = true;
  report.verified = true;
  report.rung = VerifyRung::kPrimary;
  cache.mark_verified(a, digest, "", report);
  EXPECT_EQ(cache.stats().verified_entries, 1u);
  const std::optional<Svd> hit = cache.lookup(a, digest);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->verify_report.verified);
  EXPECT_EQ(hit->verify_report.rung, VerifyRung::kPrimary);

  // The server evicts a cached result that fails re-verification.
  EXPECT_TRUE(cache.erase(a, digest));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().verified_entries, 0u);
  EXPECT_FALSE(cache.erase(a, digest));
  // mark_verified on a gone entry is a no-op, not a crash.
  cache.mark_verified(a, digest, "", report);
  EXPECT_EQ(cache.stats().verified_entries, 0u);
}

// ---- router health ledger -------------------------------------------------

serve::BreakerPolicy tight_policy(int failure_threshold = 1,
                                  double open_seconds = 5.0) {
  serve::BreakerPolicy policy;
  policy.failure_threshold = failure_threshold;
  policy.open_seconds = open_seconds;
  policy.half_open_probes = 1;
  policy.close_threshold = 1;
  return policy;
}

TEST(HealthRouter, ConsecutiveFailuresQuarantineTheWinner) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(/*failure_threshold=*/2));
  const SvdOptions options = verify_on();

  const RouteDecision healthy = router.route(64, 64, Slo{}, options, true);
  EXPECT_EQ(healthy.backend, "aie");
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kClosed);

  // One failure is not enough to trip the breaker...
  router.record_health("aie", false, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kClosed);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
  // ...the second consecutive one is.
  router.record_health("aie", false, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kOpen);

  const RouteDecision routed = router.route(64, 64, Slo{}, options, true);
  EXPECT_NE(routed.backend, "aie");
  EXPECT_FALSE(routed.backend.empty());
  const backend::Candidate* aie = candidate(routed, "aie");
  ASSERT_NE(aie, nullptr);
  EXPECT_TRUE(aie->quarantined);
}

TEST(HealthRouter, HalfOpenProbeVerifiesCleanAndRecovers) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1, /*open_seconds=*/5.0));
  FakeClock clock;
  SvdOptions options = verify_on();
  options.clock = &clock;

  router.record_health("aie", false, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kOpen);
  EXPECT_NE(router.route(64, 64, Slo{}, options, true).backend, "aie");

  // Cooldown elapses: the next admission is the half-open probe, and it
  // consumes the only probe slot -- a second concurrent request must be
  // routed elsewhere until the probe reports.
  clock.advance(6.0);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kHalfOpen);
  EXPECT_NE(router.route(64, 64, Slo{}, options, true).backend, "aie");

  // The probe attests clean: the breaker closes and the backend wins
  // routes again.
  router.record_health("aie", true, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kClosed);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
}

TEST(HealthRouter, FailedProbeReopensNeutralReleasesSlot) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1, 5.0));
  FakeClock clock;
  SvdOptions options = verify_on();
  options.clock = &clock;

  router.record_health("aie", false, options);
  clock.advance(6.0);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
  // A breaker-neutral outcome (deadline expiry) frees the probe slot
  // without judging the backend: the next request probes again.
  router.record_health_neutral("aie");
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kHalfOpen);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");

  // The probe fails attestation: straight back to quarantine for a
  // fresh cooldown.
  router.record_health("aie", false, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kOpen);
  EXPECT_NE(router.route(64, 64, Slo{}, options, true).backend, "aie");
}

TEST(HealthRouter, TransitionsInvalidateTheRouteMemo) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1));
  const SvdOptions options = verify_on();

  EXPECT_FALSE(router.route(64, 64, Slo{}, options).memo_hit);
  EXPECT_TRUE(router.route(64, 64, Slo{}, options).memo_hit);
  // Tripping a breaker changes which backend may win, so the memoized
  // scores must be re-derived.
  router.record_health("aie", false, options);
  EXPECT_FALSE(router.route(64, 64, Slo{}, options).memo_hit);
  EXPECT_TRUE(router.route(64, 64, Slo{}, options).memo_hit);
}

TEST(HealthRouter, VerifyOffRoutingIgnoresQuarantine) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1));
  const SvdOptions attested = verify_on();
  router.record_health("aie", false, attested);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kOpen);

  // With the verify policy off, routing is bit-identical to a build
  // without the verify layer: health admission never runs.
  const RouteDecision off = router.route(64, 64, Slo{}, SvdOptions{}, true);
  EXPECT_EQ(off.backend, "aie");
  const backend::Candidate* aie = candidate(off, "aie");
  ASSERT_NE(aie, nullptr);
  EXPECT_FALSE(aie->quarantined);
}

TEST(HealthRouter, AlternateExcludesThePrimaryAndTheQuarantined) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1));
  const SvdOptions options = verify_on();

  const backend::Backend* alt = router.alternate(64, 64, options, "aie");
  ASSERT_NE(alt, nullptr);
  const std::string first_choice = alt->name();
  EXPECT_NE(first_choice, "aie");

  // Quarantining the first alternate pushes the rung to the next one.
  router.record_health(first_choice, false, options);
  const backend::Backend* next = router.alternate(64, 64, options, "aie");
  ASSERT_NE(next, nullptr);
  EXPECT_NE(std::string(next->name()), "aie");
  EXPECT_NE(std::string(next->name()), first_choice);
}

TEST(HealthRouter, UnknownAndClassicNamesAreIgnored) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1));
  const SvdOptions options = verify_on();
  // The classic path (""), the reference rung, and unregistered names
  // carry no error budget: feeding them is a no-op, not a crash.
  for (const char* name : {"", "reference", "bogus"}) {
    router.record_health(name, false, options);
    router.record_health_neutral(name);
    EXPECT_EQ(router.health_state(name), serve::BreakerState::kClosed) << name;
  }
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
}

TEST(HealthRouter, ResetDropsQuarantineState) {
  Router router(make_backends(dse::DesignSpaceExplorer{}));
  router.set_health_policy(tight_policy(1));
  const SvdOptions options = verify_on();
  router.record_health("aie", false, options);
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kOpen);
  router.reset_health();
  EXPECT_EQ(router.health_state("aie"), serve::BreakerState::kClosed);
  EXPECT_EQ(router.route(64, 64, Slo{}, options, true).backend, "aie");
}

}  // namespace
}  // namespace hsvd
