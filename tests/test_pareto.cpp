// Tests for Pareto-front extraction over DSE design points.
#include <gtest/gtest.h>

#include "dse/pareto.hpp"

namespace hsvd::dse {
namespace {

DesignPoint make_point(double latency, double throughput, double power) {
  DesignPoint p;
  p.latency_seconds = latency;
  p.throughput_tasks_per_s = throughput;
  p.power_watts = power;
  return p;
}

TEST(Pareto, DominationRules) {
  const auto a = make_point(1.0, 10.0, 20.0);
  const auto better = make_point(0.5, 12.0, 18.0);
  const auto mixed = make_point(0.5, 8.0, 25.0);
  const auto equal = make_point(1.0, 10.0, 20.0);
  EXPECT_TRUE(dominates(better, a));
  EXPECT_FALSE(dominates(a, better));
  EXPECT_FALSE(dominates(mixed, a));
  EXPECT_FALSE(dominates(a, mixed));
  EXPECT_FALSE(dominates(equal, a));  // equality does not dominate
}

TEST(Pareto, FrontDropsDominatedPoints) {
  std::vector<DesignPoint> points = {
      make_point(1.0, 100.0, 30.0),  // fast but hot
      make_point(2.0, 200.0, 40.0),  // high throughput
      make_point(3.0, 50.0, 20.0),   // low power
      make_point(4.0, 40.0, 45.0),   // dominated by all of the above
  };
  auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& p : front) EXPECT_NE(p.latency_seconds, 4.0);
  // Sorted by latency.
  EXPECT_DOUBLE_EQ(front[0].latency_seconds, 1.0);
  EXPECT_DOUBLE_EQ(front[2].latency_seconds, 3.0);
}

TEST(Pareto, DuplicatesCollapse) {
  std::vector<DesignPoint> points = {make_point(1, 10, 20),
                                     make_point(1, 10, 20)};
  EXPECT_EQ(pareto_front(points).size(), 1u);
}

TEST(Pareto, SinglePointSurvives) {
  std::vector<DesignPoint> points = {make_point(1, 1, 1)};
  EXPECT_EQ(pareto_front(points).size(), 1u);
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, RealDseSpaceHasNontrivialFront) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 50;
  auto points = ex.enumerate(req);
  auto front = pareto_front(points);
  ASSERT_GE(front.size(), 2u);   // latency/throughput/power trade off
  EXPECT_LE(front.size(), points.size());
  // Nothing on the front is dominated by anything in the full set.
  for (const auto& f : front) {
    for (const auto& p : points) {
      EXPECT_FALSE(dominates(p, f));
    }
  }
  // The front spans a real latency/throughput trade-off.
  EXPECT_LT(front.front().latency_seconds, front.back().latency_seconds);
}

}  // namespace
}  // namespace hsvd::dse
