// LONG-labelled soak tests: slower campaigns that extend the default
// suite's coverage in wall-clock terms the tier-1 run cannot afford.
// Built only with -DHSVD_ENABLE_LONG_TESTS=ON and run via
// `ctest -L LONG`; see tests/CMakeLists.txt.
//
// Three campaigns:
//   - a multi-seed differential fuzz over the sharded engine (larger
//     shapes than tests/test_differential.cpp, fresh seeds per run of
//     the clock-independent kind: a fixed base seed fanned per case),
//   - a sharded fault campaign over a whole batch, with faults raised
//     on different shards across tasks,
//   - the strong-scaling crossover of bench_scaling, asserted on the
//     cycle-approximate simulator rather than the closed-form model.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/sharded.hpp"
#include "case_matrix.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "dse/frequency_model.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"
#include "scenarios/update.hpp"
#include "versal/faults.hpp"

namespace hsvd {
namespace {

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

accel::HeteroSvdConfig soak_config(std::size_t rows, std::size_t cols) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 8;
  return cfg;
}

// Multi-seed differential fuzz on shapes larger than the default-suite
// harness: for every seed, the sharded engine at S in {2, 4} must agree
// bit-for-bit with the serial single-shard run, and the factors must
// stay within float tolerance of the double-precision reference.
TEST(LongSoak, DifferentialFuzzAcrossSeedsAndShards) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(0xD1FFull * seed);
    const std::size_t cols = 48 + 16 * static_cast<std::size_t>(rng.below(4));
    const std::size_t rows = cols + 16 * static_cast<std::size_t>(rng.below(3));
    const linalg::MatrixD ad = linalg::random_gaussian(rows, cols, rng);
    const linalg::MatrixF a = ad.cast<float>();
    SCOPED_TRACE(cat("seed=", seed, " shape=", rows, "x", cols));

    SvdOptions opts;
    opts.config = soak_config(rows, cols);
    opts.threads = 1;
    const Svd base = svd(a, opts);
    ASSERT_EQ(base.status, SvdStatus::kOk);

    const linalg::SvdResult ref = linalg::reference_svd(ad);
    std::vector<double> sigma(base.sigma.begin(), base.sigma.end());
    EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-3);
    EXPECT_LT(linalg::orthogonality_error(base.u.cast<double>()), 1e-3);
    EXPECT_LT(linalg::reconstruction_error(ad, base.u.cast<double>(), sigma,
                                           base.v.cast<double>()),
              1e-4);

    for (int s : {2, 4}) {
      SvdOptions sharded = opts;
      sharded.shards = s;
      const Svd r = svd(a, sharded);
      EXPECT_TRUE(same_bits(base.u, r.u)) << "shards=" << s;
      EXPECT_TRUE(same_bits(base.v, r.v)) << "shards=" << s;
      EXPECT_EQ(base.iterations, r.iterations) << "shards=" << s;
    }
  }
}

// A 12-task batch on 2 shards with hangs injected into both arrays on
// different tasks: every task must recover and the whole batch must be
// bit-identical to a fault-free sharded run.
TEST(LongSoak, ShardedBatchFaultCampaignRecoversEveryTask) {
  const accel::HeteroSvdConfig cfg = soak_config(64, 48);
  Rng rng(77);
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(linalg::random_gaussian(64, 48, rng).cast<float>());
  }

  SvdOptions opts;
  opts.config = cfg;
  opts.threads = 1;
  opts.shards = 2;
  opts.fault_retries = 3;
  const BatchSvd clean = svd_batch(batch, opts);
  for (const Svd& r : clean.results) ASSERT_EQ(r.status, SvdStatus::kOk);

  accel::HeteroSvdAccelerator probe(cfg);
  const auto& orth = probe.placement().tasks[0].orth;
  versal::FaultPlan plan;
  // One hang early in the batch and one later, on different engine
  // groups, so recovery has to mask two distinct tiles.
  plan.faults.push_back(
      {versal::FaultKind::kTileHang, orth.front()[1], 0, 2, 0.0, 1.0});
  plan.faults.push_back(
      {versal::FaultKind::kTileHang, orth.back()[0], 0, 700, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  SvdOptions faulted = opts;
  faulted.fault_injector = &injector;
  const BatchSvd out = svd_batch(batch, faulted);

  ASSERT_EQ(out.results.size(), clean.results.size());
  EXPECT_EQ(out.failed_tasks, 0);
  EXPECT_GE(out.recovery_runs, 1);
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    SCOPED_TRACE(cat("task ", i));
    EXPECT_EQ(out.results[i].status, SvdStatus::kOk);
    EXPECT_TRUE(same_bits(clean.results[i].u, out.results[i].u));
    EXPECT_TRUE(same_bits(clean.results[i].v, out.results[i].v));
  }
}

// Multi-seed scenario fuzz over the full generated case grid: for every
// seed, every case in a widened case-matrix sweep (both conditions up
// to 1e6 and rank-deficient corners) runs through the engaged
// front-ends -- tall-skinny whenever the ratio allows it, truncated
// top-k on every case, and a short rank-1 update chain -- each held to
// the reference bounds of the default-suite harness.
TEST(LongSoak, ScenarioFuzzAcrossSeedsOverTheCaseGrid) {
  testing::CaseAxes axes;
  axes.cols = {16, 32};
  axes.ratios = {1, 8, 64};
  axes.conditions = {1e2, 1e6};
  axes.deficiencies = {0, 4};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const testing::CaseSpec& spec : testing::case_matrix(axes, seed)) {
      SCOPED_TRACE(cat("seed=", seed, " case=", spec.name()));
      const linalg::MatrixD ad = testing::generate_case(spec);
      const linalg::MatrixF a = ad.cast<float>();
      const linalg::SvdResult ref = linalg::reference_svd(ad);
      SvdOptions opts;
      opts.threads = 1;
      // Pin the accelerator shape (rows/cols re-derived per call): the
      // DSE's latency-tuned sweep budget is too small for the
      // rank-deficient corners, while the pinned path raises the
      // precision-mode cap exactly like the default-suite harness.
      accel::HeteroSvdConfig cfg;
      cfg.p_eng = 4;
      cfg.p_task = 1;
      cfg.iterations = 6;
      cfg.pipeline = accel::PipelineMode::kOff;
      opts.config = cfg;

      // Tall-skinny pre-reduction wherever rows admit it.
      if (spec.ratio >= 8) {
        SvdOptions ts = opts;
        ts.scenario = scenarios::Scenario::kTallSkinny;
        const Svd r = svd(a, ts);
        EXPECT_EQ(r.scenario, "tall-skinny");
        ASSERT_EQ(r.sigma.size(), spec.cols);
        const double scale = ref.sigma[0];
        for (std::size_t i = 0; i < spec.cols; ++i) {
          EXPECT_NEAR(r.sigma[i], ref.sigma[i], 1e-4 * scale);
        }
        std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
        EXPECT_LT(linalg::reconstruction_error(ad, r.u.cast<double>(), sigma,
                                               r.v.cast<double>()),
                  1e-4);
      }

      // Truncated top-k on every case (k below any deficient tail).
      {
        const std::size_t k = 4;
        SvdOptions tk = opts;
        tk.top_k = k;
        const Svd r = svd(a, tk);
        EXPECT_EQ(r.scenario, "truncated");
        ASSERT_EQ(r.sigma.size(), k);
        for (std::size_t i = 0; i < k; ++i) {
          EXPECT_NEAR(r.sigma[i], ref.sigma[i], 1e-3 * ref.sigma[0]);
        }
        std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
        EXPECT_LE(linalg::reconstruction_error(ad, r.u.cast<double>(), sigma,
                                               r.v.cast<double>()),
                  r.scenario_bound);
      }

      // A short update chain on the well-conditioned square cases (the
      // update core needs the full square V, and Brand updates carry an
      // accuracy contract only while every V column is well-determined
      // in fp32 -- at condition 1e6 the trailing columns of the initial
      // decomposition's V are derive_v noise, which the update core
      // would treat as an orthonormal basis).
      if (spec.ratio == 1 && spec.deficiency == 0 && spec.condition <= 1e3) {
        scenarios::StreamingSvd stream(a, opts);
        Rng urng(spec.mixed_seed() ^ 0xfeedULL);
        linalg::MatrixD accum = ad;
        for (int step = 0; step < 2; ++step) {
          const linalg::MatrixD ud =
              linalg::random_gaussian(spec.rows(), 1, urng);
          const linalg::MatrixD vd = linalg::random_gaussian(spec.cols, 1, urng);
          std::vector<float> uf(spec.rows()), vf(spec.cols);
          for (std::size_t r = 0; r < spec.rows(); ++r) {
            uf[r] = static_cast<float>(0.1 * ud(r, 0));
          }
          for (std::size_t c = 0; c < spec.cols; ++c) {
            vf[c] = static_cast<float>(vd(c, 0));
          }
          stream.apply(uf, vf);
          for (std::size_t c = 0; c < spec.cols; ++c) {
            for (std::size_t r = 0; r < spec.rows(); ++r) {
              accum(r, c) += 0.1 * ud(r, 0) * vd(c, 0);
            }
          }
        }
        const Svd r = stream.current();
        const linalg::SvdResult uref = linalg::reference_svd(accum);
        ASSERT_EQ(r.sigma.size(), spec.cols);
        for (std::size_t i = 0; i < spec.cols; ++i) {
          EXPECT_NEAR(r.sigma[i], uref.sigma[i], 1e-3 * uref.sigma[0]);
        }
        std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
        EXPECT_LT(linalg::reconstruction_error(accum, r.u.cast<double>(),
                                               sigma, r.v.cast<double>()),
                  1e-3);
      }
    }
  }
}

// The strong-scaling crossover, on the simulator: at n = 256 the
// inter-shard edge makes S = 8 slower than one array, while at n = 512
// the saved PLIO round streaming outweighs it (EXPERIMENTS.md E-scale).
TEST(LongSoak, StrongScalingCrossoverOnTheSimulator) {
  const auto simulate = [](std::size_t n, int shards) {
    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = n;
    cfg.p_eng = 8;
    cfg.p_task = 1;
    cfg.iterations = 7 + static_cast<int>(n) / 256;
    cfg.pl_frequency_hz = dse::FrequencyModel{}.max_frequency_hz(n, 1);
    accel::ShardedAccelerator acc(cfg, shards);
    return acc.estimate(1).task_seconds;
  };
  EXPECT_GT(simulate(256, 8), simulate(256, 1));
  EXPECT_LT(simulate(512, 8), simulate(512, 1));
}

}  // namespace
}  // namespace hsvd
