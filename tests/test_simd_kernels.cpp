// Scalar-vs-vector parity for the runtime-dispatched fp32 hot-path
// kernels (common/simd.hpp): dot, fused dot3, apply_rotation.
//
// The dispatch contract is *bit* identity, not tolerance: every target
// implements the same 8-lane accumulator model -- same per-lane
// accumulation order, same pairwise reduction tree, same scalar tail, no
// FMA contraction, no DAZ/FTZ. These tests pin that contract across odd
// lengths and remainder tails (every n mod 8), denormal inputs, and
// +-Inf / NaN propagation, comparing raw float bit patterns throughout.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace hsvd {
namespace {

std::uint32_t bits(float v) {
  std::uint32_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

// Independent re-implementation of the documented 8-lane model, used as
// the ground truth the scalar kernels are checked against (the AVX2
// kernels are then checked against the scalar ones, closing the chain).
constexpr std::size_t kLanes = 8;

float model_reduce(float lane[kLanes]) {
  for (std::size_t step = 1; step < kLanes; step *= 2) {
    for (std::size_t l = 0; l + step < kLanes; l += 2 * step) {
      lane[l] += lane[l + step];
    }
  }
  return lane[0];
}

float model_dot(const std::vector<float>& a, const std::vector<float>& b) {
  float lane[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= a.size(); i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) lane[l] += a[i + l] * b[i + l];
  }
  float s = 0.0f;
  for (; i < a.size(); ++i) s += a[i] * b[i];
  return model_reduce(lane) + s;
}

// Deterministic inputs mixing magnitudes from denormal (~1e-41) to 1e6,
// signs, and exact zeros -- a worst case for summation-order identity.
std::vector<float> make_input(std::size_t n, std::uint64_t salt) {
  Rng rng(0x51D0 + salt);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, -41.0 + 47.0 * rng.uniform());
    const double sign = rng.below(2) == 0 ? 1.0 : -1.0;
    v[i] = i % 13 == 7 ? 0.0f : static_cast<float>(sign * mag);
  }
  return v;
}

// Lengths covering every tail residue (n mod 8 in 0..7), the empty
// vector, sub-lane-width vectors, and a few larger sizes.
const std::vector<std::size_t>& lengths() {
  static const std::vector<std::size_t> all = [] {
    std::vector<std::size_t> n;
    for (std::size_t i = 0; i <= 70; ++i) n.push_back(i);
    n.push_back(128);
    n.push_back(509);  // prime: 63 full lanes + 5-element tail
    n.push_back(512);
    return n;
  }();
  return all;
}

bool have_avx2() {
  return simd::avx2_compiled() && simd::avx2_supported();
}

// ---- Scalar kernels vs the documented model ------------------------------

TEST(SimdKernels, ScalarDotMatchesLaneModelBitwise) {
  const simd::Kernels& k = simd::scalar_kernels();
  ASSERT_EQ(k.lane_width, 8);
  for (std::size_t n : lengths()) {
    const auto a = make_input(n, 1);
    const auto b = make_input(n, 2);
    EXPECT_EQ(bits(k.dot(a.data(), b.data(), n)), bits(model_dot(a, b)))
        << "n=" << n;
  }
}

TEST(SimdKernels, ScalarDot3MatchesPairOfDotsOnSelf) {
  // dot3's three accumulator sets follow the same model as dot, so each
  // Gram entry must equal the standalone dot of the same operands.
  const simd::Kernels& k = simd::scalar_kernels();
  for (std::size_t n : lengths()) {
    const auto x = make_input(n, 3);
    const auto y = make_input(n, 4);
    const simd::Dot3f g = k.dot3(x.data(), y.data(), n);
    EXPECT_EQ(bits(g.aii), bits(model_dot(x, x))) << "n=" << n;
    EXPECT_EQ(bits(g.ajj), bits(model_dot(y, y))) << "n=" << n;
    EXPECT_EQ(bits(g.aij), bits(model_dot(x, y))) << "n=" << n;
  }
}

TEST(SimdKernels, ScalarRotationMatchesElementwiseReference) {
  const simd::Kernels& k = simd::scalar_kernels();
  const float c = 0.8f, s = -0.6f;
  for (std::size_t n : lengths()) {
    auto x = make_input(n, 5);
    auto y = make_input(n, 6);
    std::vector<float> rx(n), ry(n);
    for (std::size_t i = 0; i < n; ++i) {
      rx[i] = c * x[i] - s * y[i];
      ry[i] = s * x[i] + c * y[i];
    }
    k.apply_rotation(x.data(), y.data(), n, c, s);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(x[i]), bits(rx[i])) << "n=" << n << " i=" << i;
      ASSERT_EQ(bits(y[i]), bits(ry[i])) << "n=" << n << " i=" << i;
    }
  }
}

// ---- AVX2 vs scalar, bit for bit -----------------------------------------

TEST(SimdKernels, Avx2DotBitIdenticalToScalar) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable on this host/build";
  const simd::Kernels& sc = simd::scalar_kernels();
  const simd::Kernels& vx = simd::avx2_kernels();
  ASSERT_EQ(vx.lane_width, sc.lane_width);
  for (std::size_t n : lengths()) {
    const auto a = make_input(n, 7);
    const auto b = make_input(n, 8);
    EXPECT_EQ(bits(vx.dot(a.data(), b.data(), n)),
              bits(sc.dot(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(SimdKernels, Avx2Dot3BitIdenticalToScalar) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable on this host/build";
  const simd::Kernels& sc = simd::scalar_kernels();
  const simd::Kernels& vx = simd::avx2_kernels();
  for (std::size_t n : lengths()) {
    const auto x = make_input(n, 9);
    const auto y = make_input(n, 10);
    const simd::Dot3f a = sc.dot3(x.data(), y.data(), n);
    const simd::Dot3f b = vx.dot3(x.data(), y.data(), n);
    EXPECT_EQ(bits(a.aii), bits(b.aii)) << "n=" << n;
    EXPECT_EQ(bits(a.ajj), bits(b.ajj)) << "n=" << n;
    EXPECT_EQ(bits(a.aij), bits(b.aij)) << "n=" << n;
  }
}

TEST(SimdKernels, Avx2RotationBitIdenticalToScalar) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable on this host/build";
  const float c = 0.28735631f, s = 0.95782629f;
  for (std::size_t n : lengths()) {
    auto xs = make_input(n, 11);
    auto ys = make_input(n, 12);
    auto xv = xs;
    auto yv = ys;
    simd::scalar_kernels().apply_rotation(xs.data(), ys.data(), n, c, s);
    simd::avx2_kernels().apply_rotation(xv.data(), yv.data(), n, c, s);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(xv[i]), bits(xs[i])) << "n=" << n << " i=" << i;
      ASSERT_EQ(bits(yv[i]), bits(ys[i])) << "n=" << n << " i=" << i;
    }
  }
}

// ---- Denormals and non-finite guard behavior -----------------------------

TEST(SimdKernels, DenormalProductsStayBitIdentical) {
  // Products of ~1e-30 operands land deep in the denormal range; the
  // contract forbids DAZ/FTZ, so both paths must keep the exact
  // gradually-underflowed bits.
  const std::size_t n = 37;
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1e-30f * static_cast<float>(i + 1);
    b[i] = (i % 2 == 0 ? 1e-12f : -1e-12f) * static_cast<float>(i + 3);
  }
  const float sc = simd::scalar_kernels().dot(a.data(), b.data(), n);
  EXPECT_NE(sc, 0.0f);  // a DAZ/FTZ path would flush this to zero
  EXPECT_GT(std::fabs(sc), 0.0f);
  EXPECT_LT(std::fabs(sc), std::numeric_limits<float>::min());
  if (have_avx2()) {
    EXPECT_EQ(bits(simd::avx2_kernels().dot(a.data(), b.data(), n)),
              bits(sc));
  }
}

TEST(SimdKernels, InfAndNanPropagateIdentically) {
  // Poison a single element -- in a full lane block and in the tail --
  // with +-Inf or NaN; both paths must produce the same bit pattern
  // (Inf, -Inf, or a NaN with identical payload propagation).
  const std::size_t n = 21;  // 2 lane blocks + 5-element tail
  const float poisons[] = {std::numeric_limits<float>::infinity(),
                           -std::numeric_limits<float>::infinity(),
                           std::numeric_limits<float>::quiet_NaN()};
  for (float poison : poisons) {
    for (std::size_t at : {std::size_t{3}, std::size_t{18}}) {
      auto a = make_input(n, 13);
      const auto b = make_input(n, 14);
      a[at] = poison;
      const float sc = simd::scalar_kernels().dot(a.data(), b.data(), n);
      EXPECT_FALSE(std::isfinite(sc))
          << "poison=" << poison << " at=" << at;
      if (have_avx2()) {
        const float vx = simd::avx2_kernels().dot(a.data(), b.data(), n);
        EXPECT_EQ(bits(vx), bits(sc)) << "poison=" << poison << " at=" << at;
      }
      // The engine's guard: a poisoned column makes the Gram entries
      // non-finite, which the accelerator's detection points catch.
      const simd::Dot3f g =
          simd::scalar_kernels().dot3(a.data(), b.data(), n);
      EXPECT_FALSE(std::isfinite(g.aii));
      EXPECT_FALSE(std::isfinite(g.aij));
    }
  }
}

// ---- Dispatch seam -------------------------------------------------------

TEST(SimdKernels, ActiveIsAlwaysAValidTarget) {
  const simd::Kernels& k = simd::active();
  EXPECT_EQ(k.lane_width, 8);
  const bool is_scalar = &k == &simd::scalar_kernels();
  const bool is_avx2 = have_avx2() && &k == &simd::avx2_kernels();
  EXPECT_TRUE(is_scalar || is_avx2) << "active() returned " << k.name;
}

TEST(SimdKernels, SetActiveForTestingRoundTrips) {
  const simd::Kernels* prev =
      simd::set_active_for_testing(&simd::scalar_kernels());
  EXPECT_EQ(&simd::active(), &simd::scalar_kernels());
  simd::set_active_for_testing(prev);
  EXPECT_EQ(&simd::active(), prev);
}

TEST(SimdKernels, EnvOverrideForcesScalar) {
  // set_active_for_testing(nullptr) re-runs the startup resolution, so
  // the environment seam is testable in-process.
  const simd::Kernels* prev = simd::set_active_for_testing(nullptr);
  ASSERT_EQ(setenv("HSVD_FORCE_SCALAR", "1", 1), 0);
  simd::set_active_for_testing(nullptr);
  EXPECT_EQ(&simd::active(), &simd::scalar_kernels());
  ASSERT_EQ(unsetenv("HSVD_FORCE_SCALAR"), 0);
  simd::set_active_for_testing(prev);
}

}  // namespace
}  // namespace hsvd
