// Tests for the analytic performance model (eqs. (8)-(14)) -- including
// the paper's own validation protocol: model vs "board" (our simulator)
// error must stay in the single digits (Tables IV and V report 1.78% /
// 4.33% average).
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "common/stats.hpp"
#include "perfmodel/perf_model.hpp"
#include "perfmodel/power_model.hpp"
#include "perfmodel/resource_model.hpp"

namespace hsvd::perf {
namespace {

accel::HeteroSvdConfig make_config(std::size_t n, int p_eng, int p_task,
                                   double freq_hz, int iters) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = p_eng;
  cfg.p_task = p_task;
  cfg.pl_frequency_hz = freq_hz;
  cfg.iterations = iters;
  return cfg;
}

TEST(PerfModel, BreakdownComponentsArePositiveAndConsistent) {
  PerformanceModel model;
  auto cfg = make_config(128, 8, 1, 208.3e6, 6);
  auto b = model.evaluate(cfg, 1);
  EXPECT_GT(b.t_tx_col, 0);
  EXPECT_NEAR(b.t_tx_blk, 8 * b.t_tx_col, 1e-15);
  EXPECT_GT(b.t_orth, 0);
  EXPECT_GT(b.t_pipeline, b.t_tx_blk);
  EXPECT_GT(b.t_iter, b.t_round);
  EXPECT_NEAR(b.t_task, b.t_ddr + 6 * b.t_iter + b.t_norm_stage + b.t_hls,
              1e-12);
  EXPECT_DOUBLE_EQ(b.t_sys, b.t_task);  // batch 1, P_task 1
}

TEST(PerfModel, SysTimeCeilsBatchOverTasks) {
  PerformanceModel model;
  auto cfg = make_config(128, 2, 4, 208.3e6, 6);
  auto b5 = model.evaluate(cfg, 5);   // ceil(5/4) = 2 waves
  auto b8 = model.evaluate(cfg, 8);   // 2 waves
  auto b9 = model.evaluate(cfg, 9);   // 3 waves
  // A wave adds the DDR staging of the extra tasks sharing a DDRMC port
  // (4 tasks over 4 ports: no sharing, so the wave equals one task).
  const double wave = b5.t_task;
  EXPECT_NEAR(b5.t_sys, 2 * wave, 1e-12);
  EXPECT_NEAR(b8.t_sys, 2 * wave, 1e-12);
  EXPECT_NEAR(b9.t_sys, 3 * wave, 1e-12);
}

TEST(PerfModel, HigherFrequencyIsFaster) {
  PerformanceModel model;
  auto slow = model.evaluate(make_config(256, 8, 1, 200e6, 6), 1);
  auto fast = model.evaluate(make_config(256, 8, 1, 400e6, 6), 1);
  EXPECT_LT(fast.t_task, slow.t_task);
}

TEST(PerfModel, AieWaitAppearsWhenKernelsDominate) {
  PerformanceModel model;
  // Small P_eng on a small matrix: the kernel outlasts the block Tx.
  auto b = model.evaluate(make_config(64, 2, 1, 400e6, 6), 1);
  EXPECT_GT(b.t_aie_wait, 0.0);
  // Large P_eng: transmission dominates.
  auto b2 = model.evaluate(make_config(512, 8, 1, 208.3e6, 6), 1);
  EXPECT_DOUBLE_EQ(b2.t_aie_wait, 0.0);
}

// The paper's Table IV protocol: fixed 208.3 MHz, P_eng x matrix size
// grid, single iteration, model vs measurement.
struct ModelCase {
  std::size_t n;
  int p_eng;
};

class ModelVsSimulator : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelVsSimulator, ErrorWithinEightPercent) {
  const auto& p = GetParam();
  auto cfg = make_config(p.n, p.p_eng, 1, 208.3e6, 1);
  accel::HeteroSvdAccelerator acc(cfg);
  const double sim = acc.estimate(1).task_seconds;
  PerformanceModel model;
  const double mod = model.evaluate(cfg, 1).t_task;
  EXPECT_LT(hsvd::relative_error(mod, sim), 0.08)
      << "n=" << p.n << " P_eng=" << p.p_eng << " sim=" << sim
      << " model=" << mod;
}

INSTANTIATE_TEST_SUITE_P(
    TableIvGrid, ModelVsSimulator,
    ::testing::Values(ModelCase{128, 2}, ModelCase{256, 2}, ModelCase{512, 2},
                      ModelCase{128, 4}, ModelCase{256, 4}, ModelCase{512, 4},
                      ModelCase{128, 8}, ModelCase{256, 8}, ModelCase{512, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.p_eng);
    });

TEST(PerfModel, BatchScenarioStaysInBand) {
  // Table V's validation protocol measures one steady-state wave (the
  // bench does the same); a *fully* simulated 100-task batch additionally
  // has cross-wave DDR/NoC overlap and per-slot channel carry-over that
  // the wave-multiplied analytic model abstracts away. The single-wave
  // error must stay tight; the full-batch error merely bounded.
  auto cfg = make_config(128, 4, 6, 330e6, 1);
  PerformanceModel model;
  accel::HeteroSvdAccelerator wave_acc(cfg);
  const double sim_wave = wave_acc.estimate(cfg.p_task).batch_seconds;
  const double mod_wave = model.evaluate(cfg, cfg.p_task).t_sys;
  EXPECT_LT(hsvd::relative_error(mod_wave, sim_wave), 0.08);

  accel::HeteroSvdAccelerator batch_acc(cfg);
  const double sim_batch = batch_acc.estimate(100).batch_seconds;
  const double mod_batch = model.evaluate(cfg, 100).t_sys;
  EXPECT_LT(hsvd::relative_error(mod_batch, sim_batch), 0.30);
}

TEST(ResourceModel, UramMatchesTableIIAnchors) {
  versal::DeviceResources dev = versal::vck190();
  // Table II (P_task = 1): 128 -> 4, 256 -> 20(ours 16), 512 -> 64(60).
  EXPECT_EQ(uram_per_task(128, 128, dev), 4);
  EXPECT_EQ(uram_per_task(256, 256, dev), 16);
  EXPECT_EQ(uram_per_task(512, 512, dev), 60);
  EXPECT_EQ(uram_per_task(1024, 1024, dev), 228);
}

TEST(ResourceModel, FitsChecksEveryBudget) {
  versal::DeviceResources dev = versal::vck190();
  ResourceUsage ok;
  ok.aie_orth = 100;
  ok.uram = 100;
  EXPECT_TRUE(ok.fits(dev));
  ResourceUsage too_many_aie = ok;
  too_many_aie.aie_mem = 350;
  EXPECT_FALSE(too_many_aie.fits(dev));
  ResourceUsage too_much_uram = ok;
  too_much_uram.uram = 500;
  EXPECT_FALSE(too_much_uram.fits(dev));
}

TEST(PowerModel, TableVIBandAndOrdering) {
  PowerModel power;
  // More URAM (higher P_task) must cost more power at equal frequency.
  ResourceUsage high_task;
  high_task.aie_orth = 156;
  high_task.aie_norm = 52;
  high_task.uram = 416;
  ResourceUsage low_task;
  low_task.aie_orth = 240;
  low_task.aie_norm = 16;
  low_task.aie_mem = 64;
  low_task.uram = 32;
  const double p_high = power.system_watts(high_task, 208.3e6);
  const double p_low = power.system_watts(low_task, 208.3e6);
  EXPECT_GT(p_high, p_low);
  // Both in Table VI's 26-45 W band.
  EXPECT_GT(p_low, 20.0);
  EXPECT_LT(p_high, 50.0);
}

TEST(PowerModel, FrequencyTermScales) {
  PowerModel power;
  ResourceUsage usage;
  usage.aie_orth = 100;
  EXPECT_GT(power.system_watts(usage, 400e6), power.system_watts(usage, 200e6));
}

}  // namespace
}  // namespace hsvd::perf
