// Tests for the two-stage design space exploration (section IV-C).
#include <gtest/gtest.h>

#include "dse/explorer.hpp"

namespace hsvd::dse {
namespace {

TEST(FrequencyModel, MatchesTableVTrends) {
  FrequencyModel f;
  // Single-task frequencies fall with matrix size (Table V: 450 -> 310).
  EXPECT_NEAR(f.max_frequency_hz(128, 1), 450e6, 1e-6);
  EXPECT_GT(f.max_frequency_hz(128, 1), f.max_frequency_hz(256, 1));
  EXPECT_GT(f.max_frequency_hz(256, 1), f.max_frequency_hz(512, 1));
  EXPECT_GT(f.max_frequency_hz(512, 1), f.max_frequency_hz(1024, 1));
  // Task parallelism costs frequency (Table V: 450 -> 330 at P_task 9).
  EXPECT_LT(f.max_frequency_hz(128, 9), f.max_frequency_hz(128, 1));
  // Floor holds.
  EXPECT_GE(f.max_frequency_hz(4096, 26), f.floor_hz);
}

TEST(Dse, Stage1MaximizesTaskParallelism) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 128;
  auto max2 = ex.max_task_parallelism(req, 2);
  ASSERT_TRUE(max2.has_value());
  EXPECT_GE(*max2, 20);  // small tasks stack: high parallelism
  auto max8 = ex.max_task_parallelism(req, 8);
  ASSERT_TRUE(max8.has_value());
  EXPECT_LE(*max8, 2);  // three bands wide: at most two fit
  EXPECT_LT(*max8, *max2);
}

TEST(Dse, UramConstraintBindsAtLargeSizes) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 1024;  // 228 URAM per task of 463
  auto max2 = ex.max_task_parallelism(req, 2);
  ASSERT_TRUE(max2.has_value());
  EXPECT_LE(*max2, 2);  // PL memory, not AIE area, limits parallelism
}

TEST(Dse, LatencyObjectivePrefersHighPeng) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 1;
  req.objective = Objective::kLatency;
  auto best = ex.optimize(req);
  EXPECT_GE(best.p_eng, 6);
  EXPECT_EQ(best.p_task, 1);  // parallel tasks do not help one matrix
}

TEST(Dse, ThroughputObjectivePrefersHighPtask) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 128;
  req.batch = 100;
  req.objective = Objective::kThroughput;
  auto best = ex.optimize(req);
  EXPECT_GE(best.p_task, 4);
  DseRequest lat = req;
  lat.objective = Objective::kLatency;
  auto fast = ex.optimize(lat);
  EXPECT_LE(best.latency_seconds, 10 * fast.latency_seconds);
  EXPECT_GT(best.throughput_tasks_per_s, fast.throughput_tasks_per_s);
}

TEST(Dse, EnumerationSortedByObjective) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 50;
  req.objective = Objective::kThroughput;
  auto points = ex.enumerate(req);
  ASSERT_GE(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i - 1].throughput_tasks_per_s,
              points[i].throughput_tasks_per_s);
  }
  // Every enumerated point respects the budgets (eq. (16)).
  for (const auto& p : points) {
    EXPECT_TRUE(p.resources.fits(req.device));
    EXPECT_GT(p.power_watts, 0.0);
  }
}

TEST(Dse, FixedFrequencyIsHonored) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 256;
  req.frequency_hz = 208.3e6;
  auto points = ex.enumerate(req);
  for (const auto& p : points) EXPECT_DOUBLE_EQ(p.frequency_hz, 208.3e6);
}

TEST(Dse, EnergyEfficiencyComputed) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 128;
  req.batch = 100;
  req.objective = Objective::kThroughput;
  auto best = ex.optimize(req);
  EXPECT_NEAR(best.energy_efficiency(),
              best.throughput_tasks_per_s / best.power_watts, 1e-12);
  // HeteroSVD's headline: well above the GPU's 5.005 tasks/s/W at 128.
  EXPECT_GT(best.energy_efficiency(), 5.0);
}

TEST(Dse, TinyProblemStillHasAPoint) {
  // Even a 2x2 matrix admits P_eng = 1 (two single-column blocks).
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 2;
  auto best = ex.optimize(req);
  EXPECT_EQ(best.p_eng, 1);
}

TEST(Dse, ImpossibleDeviceRejected) {
  DesignSpaceExplorer ex;
  DseRequest req;
  req.rows = req.cols = 128;
  req.device.total_aie = 0;  // nothing places on an empty array
  EXPECT_THROW(ex.optimize(req), std::invalid_argument);
}

}  // namespace
}  // namespace hsvd::dse
