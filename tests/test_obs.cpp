// Tests for the observability subsystem (src/obs/): metrics registry
// sharding and histogram math, Chrome-trace export validity, per-tile
// utilization accounting, and the inertness guarantee (observation never
// changes results or the simulated timeline).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/report.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "obs/obs.hpp"

namespace hsvd::obs {
namespace {

// --- minimal JSON validator ----------------------------------------------
// Recursive-descent structural parse: enough to prove the export is real
// JSON (balanced containers, escaped strings, numeric literals), which
// substring checks cannot.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (std::strchr("\"\\/bfnrt", e) == nullptr && e != 'u') return false;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr(".eE+-", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_substr(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- metrics registry ----------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndText) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 41);
  reg.set_gauge("b.gauge", 2.5);
  reg.set_gauge("b.gauge", 3.5);  // last write wins
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b.gauge"), 3.5);
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("a.count 42"), std::string::npos);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(MetricsRegistry, ConcurrentShardsSumExactly) {
  // Hammer the registry from pool workers: every index adds a known
  // delta and records one histogram sample. Shard merging is an
  // order-independent integer sum, so the snapshot must be *exact*, not
  // approximate, for any interleaving.
  MetricsRegistry reg;
  constexpr std::size_t kIndices = 512;
  constexpr int kThreads = 8;
  reg.register_histogram("hammer.hist",
                         MetricsRegistry::exponential_bounds(1.0, 2.0, 12));
  common::ThreadPool::shared().parallel_for(
      kIndices, kThreads, [&](std::size_t i) {
        reg.add("hammer.count", i + 1);
        reg.add("hammer.calls");
        reg.observe("hammer.hist", static_cast<double>(i % 64));
      });
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hammer.count"),
            kIndices * (kIndices + 1) / 2);
  EXPECT_EQ(snap.counters.at("hammer.calls"), kIndices);
  const auto& hist = snap.histograms.at("hammer.hist");
  EXPECT_EQ(hist.total, kIndices);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kIndices; ++i) {
    expected_sum += static_cast<double>(i % 64);
  }
  EXPECT_DOUBLE_EQ(hist.sum, expected_sum);
}

TEST(MetricsRegistry, SnapshotWhileRecordingNeverTearsACounter) {
  // Snapshots taken mid-hammer see some prefix of the adds (shards lock
  // one at a time) but never a torn or over-counted value.
  MetricsRegistry reg;
  constexpr std::size_t kIndices = 256;
  std::atomic<bool> done{false};
  std::uint64_t last_seen = 0;
  std::thread watcher([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = reg.snapshot();
      const auto it = snap.counters.find("mid.count");
      const std::uint64_t seen =
          it == snap.counters.end() ? 0 : it->second;
      EXPECT_LE(seen, kIndices);
      EXPECT_GE(seen, last_seen);  // monotone: counters only grow
      last_seen = seen;
    }
  });
  common::ThreadPool::shared().parallel_for(
      kIndices, 8, [&](std::size_t) { reg.add("mid.count"); });
  done.store(true, std::memory_order_release);
  watcher.join();
  EXPECT_EQ(reg.snapshot().counters.at("mid.count"), kIndices);
}

TEST(MetricsRegistry, HistogramBucketEdgesAndQuantiles) {
  MetricsRegistry reg;
  reg.register_histogram("edges", {1.0, 2.0, 4.0});
  // A value lands in the first bucket whose upper edge is >= value.
  reg.observe("edges", 0.5);   // bucket 0 (le 1)
  reg.observe("edges", 1.0);   // bucket 0: edge is inclusive
  reg.observe("edges", 1.5);   // bucket 1 (le 2)
  reg.observe("edges", 2.0);   // bucket 1
  reg.observe("edges", 3.0);   // bucket 2 (le 4)
  reg.observe("edges", 100.0); // overflow
  const auto hist = reg.snapshot().histograms.at("edges");
  ASSERT_EQ(hist.bounds.size(), 3u);
  ASSERT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[3], 1u);
  EXPECT_EQ(hist.total, 6u);
  EXPECT_DOUBLE_EQ(hist.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 100.0);
  // Quantiles interpolate within the winning bucket; the overflow
  // bucket clamps to the last edge.
  EXPECT_GT(hist.quantile(0.5), 1.0);
  EXPECT_LE(hist.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
}

TEST(MetricsRegistry, ExponentialBoundsAndDefaults) {
  const auto bounds = MetricsRegistry::exponential_bounds(1.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256.0);
  // Unregistered histograms fall back to the default edges.
  MetricsRegistry reg;
  reg.observe("unregistered", 3.0);
  const auto hist = reg.snapshot().histograms.at("unregistered");
  EXPECT_EQ(hist.bounds, MetricsRegistry::default_bounds());
  EXPECT_EQ(hist.total, 1u);
}

TEST(MetricsRegistry, SnapshotJsonIsValid) {
  MetricsRegistry reg;
  reg.add("c\"tricky\\name");
  reg.set_gauge("g", -1.25);
  reg.observe("h", 2.0);
  const std::string json = reg.snapshot().to_json();
  JsonScanner scanner(json);
  EXPECT_TRUE(scanner.valid()) << json;
}

// --- tracer --------------------------------------------------------------

TEST(TracerExport, ChromeJsonParsesAndSeparatesDomains) {
  Tracer tracer;
  tracer.span(Domain::kSim, "core(0,0)", "orth c0/c1", "kernel", 1e-6, 2e-6);
  tracer.span(Domain::kSim, "dma(0,0)", "shadow", "dma", 0.0, 5e-7);
  tracer.span(Domain::kHost, "worker-0", "batch-chain[0]", "pool", 0.0, 1e-3);
  tracer.instant(Domain::kSim, "faults", "inject:hang \"(1,1)\"", "fault",
                 2e-6);
  EXPECT_EQ(tracer.event_count(), 4u);
  const std::string json = tracer.to_chrome_json();
  JsonScanner scanner(json);
  ASSERT_TRUE(scanner.valid()) << json;
  // Two process groups: simulated fabric and host.
  EXPECT_NE(json.find("\"simulated fabric\""), std::string::npos);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
  // Three complete spans, one instant, and the escaped instant name.
  EXPECT_EQ(count_substr(json, "\"ph\":\"X\""), 3u);
  EXPECT_EQ(count_substr(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("inject:hang \\\"(1,1)\\\""), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerExport, AcceleratorRunProducesAllTrackFamilies) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 2;
  cfg.iterations = 2;
  accel::HeteroSvdAccelerator acc(cfg);
  ObsContext obs;
  obs.enable_tracing();
  acc.attach_observer(&obs);
  ScopedPoolObservation observe(&obs);

  Rng rng(7);
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 2; ++i) {
    batch.push_back(linalg::random_gaussian(24, 16, rng).cast<float>());
  }
  const auto run = acc.run(batch);
  EXPECT_EQ(run.failed_tasks, 0);

  const std::string json = obs.tracer()->to_chrome_json();
  JsonScanner scanner(json);
  ASSERT_TRUE(scanner.valid());
  // Per-tile kernel spans, inter-tile transfers, PLIO, the task slots.
  EXPECT_NE(json.find("\"core("), std::string::npos);
  EXPECT_NE(json.find("\"dma("), std::string::npos);
  EXPECT_NE(json.find("\"plio."), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"task\""), std::string::npos);

  bool saw_sim = false;
  bool saw_host = false;
  for (const auto& span : obs.tracer()->spans()) {
    saw_sim = saw_sim || span.domain == Domain::kSim;
    saw_host = saw_host || span.domain == Domain::kHost;
    EXPECT_GE(span.duration_s, 0.0);
  }
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_host);  // pool observer fed batch-chain / task-post spans
}

// --- utilization accounting ----------------------------------------------

TEST(Utilization, CountersMatchMetricsAndTimelineTotals) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 2;
  cfg.iterations = 2;
  accel::HeteroSvdAccelerator acc(cfg);
  ObsContext obs;
  acc.attach_observer(&obs);

  Rng rng(11);
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(linalg::random_gaussian(24, 16, rng).cast<float>());
  }
  const auto run = acc.run(batch);
  ASSERT_EQ(run.failed_tasks, 0);
  const versal::UtilizationReport& util = run.utilization;

  EXPECT_DOUBLE_EQ(util.makespan_seconds, run.batch_seconds);
  // The per-tile aggregate must reproduce the legacy scalar exactly on a
  // fault-free run -- both are busy-over-active-makespan.
  EXPECT_NEAR(util.core_utilization(), run.core_utilization, 1e-12);

  const auto snap = obs.metrics().snapshot();
  std::uint64_t invocations = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t stream_bytes = 0;
  double busy_cycles = 0.0;
  for (const auto& tile : util.tiles) {
    invocations += tile.kernel_invocations;
    dma_bytes += tile.dma_bytes;
    stream_bytes += tile.stream_bytes;
    busy_cycles += tile.busy_cycles;
    // Tally sanity: a tile never accounts more than the makespan.
    EXPECT_LE(tile.busy_cycles + tile.stalled_cycles + tile.idle_cycles,
              util.makespan_cycles() * (1.0 + 1e-9));
  }
  EXPECT_EQ(invocations, snap.counters.at("sim.kernel.invocations"));
  EXPECT_EQ(dma_bytes, snap.counters.at("sim.dma.bytes"));
  EXPECT_EQ(stream_bytes, snap.counters.at("sim.stream.bytes"));
  EXPECT_EQ(util.total_dma_bytes(), dma_bytes);
  EXPECT_EQ(util.total_stream_bytes(), stream_bytes);
  // Kernel-cycle histogram totals are the same events the busy tallies
  // integrate: counts match invocations, cycle sums match busy cycles.
  const auto& kernel_hist = snap.histograms.at("sim.kernel.cycles");
  EXPECT_EQ(kernel_hist.total, invocations);
  EXPECT_NEAR(kernel_hist.sum, busy_cycles, busy_cycles * 1e-9 + 1e-6);
}

TEST(Utilization, HeatGridRendersEveryTileRow) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 2;
  accel::HeteroSvdAccelerator acc(cfg);
  Rng rng(3);
  const auto run =
      acc.run({linalg::random_gaussian(24, 16, rng).cast<float>()});
  const std::string grid = accel::render_utilization(run.utilization);
  // Header plus one line per array row; busy tiles show digits, unused
  // tiles dots.
  EXPECT_EQ(count_substr(grid, "\n"),
            static_cast<std::size_t>(run.utilization.rows) + 1);
  EXPECT_NE(grid.find("core busy"), std::string::npos);
  EXPECT_NE(grid.find_first_of("0123456789*"), std::string::npos);
  EXPECT_NE(grid.find('.'), std::string::npos);
}

// --- the inertness guarantee ---------------------------------------------

TEST(ObsGuard, ObservationChangesNeitherResultsNorSimulatedTiming) {
  Rng rng(23);
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(linalg::random_gaussian(24, 16, rng).cast<float>());
  }
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 2;
  cfg.iterations = 3;
  SvdOptions options;
  options.config = cfg;
  options.threads = 4;  // parallel chains when untraced, sequential traced

  const BatchSvd off = svd_batch(batch, options);

  ObsContext metrics_only;
  options.observer = &metrics_only;
  const BatchSvd with_metrics = svd_batch(batch, options);

  ObsContext tracing;
  tracing.enable_tracing();
  options.observer = &tracing;
  const BatchSvd with_tracing = svd_batch(batch, options);
  EXPECT_GT(tracing.tracer()->event_count(), 0u);

  for (const BatchSvd* observed : {&with_metrics, &with_tracing}) {
    // Simulated timing is bit-identical: observation reads timestamps,
    // it never schedules.
    EXPECT_EQ(observed->batch_seconds, off.batch_seconds);
    EXPECT_EQ(observed->throughput_tasks_per_s, off.throughput_tasks_per_s);
    ASSERT_EQ(observed->results.size(), off.results.size());
    for (std::size_t i = 0; i < off.results.size(); ++i) {
      const Svd& a = off.results[i];
      const Svd& b = observed->results[i];
      EXPECT_EQ(a.sigma, b.sigma);
      EXPECT_EQ(a.iterations, b.iterations);
      EXPECT_EQ(a.accelerator_seconds, b.accelerator_seconds);
      ASSERT_EQ(a.u.rows(), b.u.rows());
      ASSERT_EQ(a.u.cols(), b.u.cols());
      const auto da = a.u.data();
      const auto db = b.u.data();
      EXPECT_TRUE(da.empty() ||
                  std::memcmp(da.data(), db.data(), da.size_bytes()) == 0);
      const auto va = a.v.data();
      const auto vb = b.v.data();
      EXPECT_TRUE(va.empty() ||
                  std::memcmp(va.data(), vb.data(), va.size_bytes()) == 0);
    }
  }
}

}  // namespace
}  // namespace hsvd::obs
