// Tests for the public API facade (heterosvd.hpp): svd(), svd_batch(),
// derive_v(), wide-matrix handling, option plumbing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd {
namespace {

linalg::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

TEST(Facade, SvdMatchesReference) {
  auto a = random_matrix(24, 16, 600);
  Svd r = svd(a);
  auto ref = linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
  EXPECT_LT(linalg::orthogonality_error(r.u.cast<double>()), 1e-4);
  EXPECT_LT(linalg::orthogonality_error(r.v.cast<double>()), 1e-3);
  EXPECT_LT(linalg::reconstruction_error(a.cast<double>(), r.u.cast<double>(),
                                         sigma, r.v.cast<double>()),
            1e-5);
  EXPECT_GT(r.accelerator_seconds, 0.0);
  EXPECT_LT(r.convergence_rate, 1e-6);
}

TEST(Facade, WideMatrixTransposesAndSwapsFactors) {
  auto a = random_matrix(12, 20, 601);  // wide
  Svd r = svd(a);
  auto ref = linalg::reference_svd(linalg::transpose(a.cast<double>()));
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
  // U spans the 12-dim row space, V the 20-dim column space.
  EXPECT_EQ(r.u.rows(), 12u);
  EXPECT_EQ(r.v.rows(), 20u);
  EXPECT_LT(linalg::reconstruction_error(a.cast<double>(), r.u.cast<double>(),
                                         sigma, r.v.cast<double>()),
            1e-5);
}

TEST(Facade, WideMatrixWithoutV) {
  auto a = random_matrix(8, 14, 602);
  SvdOptions opts;
  opts.want_v = false;
  Svd r = svd(a, opts);
  EXPECT_TRUE(r.v.empty());
  EXPECT_EQ(r.u.rows(), 8u);
}

TEST(Facade, ExplicitConfigOverridesDse) {
  auto a = random_matrix(16, 8, 603);
  SvdOptions opts;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 12;
  opts.config = cfg;
  Svd r = svd(a, opts);
  auto ref = linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
}

TEST(Facade, BatchSharedShapeEnforced) {
  std::vector<linalg::MatrixF> batch = {random_matrix(8, 4, 604),
                                        random_matrix(8, 6, 605)};
  EXPECT_THROW(svd_batch(batch), std::invalid_argument);
  EXPECT_THROW(svd_batch({}), std::invalid_argument);
}

TEST(Facade, BatchDecomposesEveryTask) {
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(random_matrix(12, 8, 700 + i));
  BatchSvd out = svd_batch(batch);
  ASSERT_EQ(out.results.size(), 4u);
  EXPECT_GT(out.throughput_tasks_per_s, 0.0);
  EXPECT_GT(out.config.p_task, 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto ref = linalg::reference_svd(batch[i].cast<double>());
    std::vector<double> sigma(out.results[i].sigma.begin(),
                              out.results[i].sigma.end());
    EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4) << i;
  }
}

TEST(Facade, DeriveVRecoversRightFactor) {
  Rng rng(606);
  auto ad = linalg::matrix_with_spectrum(10, 6,
                                         linalg::geometric_spectrum(6, 10.0),
                                         rng);
  auto ref = linalg::reference_svd(ad);
  linalg::MatrixF u = ref.u.cast<float>();
  std::vector<float> sigma(ref.sigma.begin(), ref.sigma.end());
  linalg::MatrixF v = derive_v(ad.cast<float>(), u, sigma);
  EXPECT_LT(linalg::orthogonality_error(v.cast<double>()), 1e-3);
  // Matches the reference V up to column signs.
  for (std::size_t t = 0; t < 6; ++t) {
    double dot = 0;
    for (std::size_t j = 0; j < 6; ++j)
      dot += static_cast<double>(v(j, t)) * ref.v(j, t);
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-4) << "column " << t;
  }
}

TEST(Facade, CleanRunsReportOkRobustnessFields) {
  std::vector<linalg::MatrixF> batch = {random_matrix(12, 8, 650),
                                        random_matrix(12, 8, 651)};
  BatchSvd out = svd_batch(batch);
  EXPECT_EQ(out.failed_tasks, 0);
  EXPECT_EQ(out.recovery_runs, 0);
  for (const auto& r : out.results) {
    EXPECT_EQ(r.status, SvdStatus::kOk);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.message.empty());
    EXPECT_EQ(r.recovery_attempts, 0);
  }
}

TEST(Facade, DeriveVLeavesZeroSigmaColumnsZero) {
  auto a = random_matrix(6, 4, 607);
  linalg::MatrixF u(6, 2);
  u(0, 0) = 1;
  u(1, 1) = 1;
  std::vector<float> sigma = {2.0f, 0.0f};
  auto v = derive_v(a, u, sigma);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(v(j, 1), 0.0f);
}

}  // namespace
}  // namespace hsvd
