// Tests for the ASCII configuration reports.
#include <gtest/gtest.h>

#include "accel/placement.hpp"
#include "accel/report.hpp"

namespace hsvd::accel {
namespace {

TEST(Report, FloorplanMarksEveryRole) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 256;
  cfg.p_eng = 8;
  cfg.p_task = 2;
  auto placement = place(cfg);
  versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  const std::string plan = render_floorplan(placement, geo);
  // Header + 8 rows.
  EXPECT_EQ(std::count(plan.begin(), plan.end(), '\n'), 9);
  // Character counts in the grid body match the placement exactly.
  const std::string body = plan.substr(plan.find('\n') + 1);
  EXPECT_EQ(std::count(body.begin(), body.end(), '0'),
            placement.num_orth / 2);
  EXPECT_EQ(std::count(body.begin(), body.end(), '1'),
            placement.num_orth / 2);
  EXPECT_EQ(std::count(body.begin(), body.end(), 'N'), placement.num_norm);
  EXPECT_EQ(std::count(body.begin(), body.end(), 'M'), placement.num_mem);
}

TEST(Report, FloorplanIdleCountConsistent) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 128;
  cfg.p_eng = 2;
  cfg.p_task = 4;
  auto placement = place(cfg);
  versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  const std::string plan = render_floorplan(placement, geo);
  const auto body = plan.substr(plan.find('\n') + 1);
  EXPECT_EQ(std::count(body.begin(), body.end(), '.'),
            geo.tile_count() - placement.total_aie());
}

TEST(Report, ScheduleRenderingShowsPairsAndMoves) {
  const std::string s =
      render_schedule(jacobi::OrderingKind::kShiftingRing, 3);
  // 2k-1 = 5 rows, 1-indexed columns like the paper's Fig. 3.
  EXPECT_NE(s.find("row-1: (1,2) (3,4) (5,6)"), std::string::npos);
  EXPECT_NE(s.find("row-5:"), std::string::npos);
  EXPECT_EQ(s.find("row-6:"), std::string::npos);
  // Each of the 4 transitions has exactly one DMA (2(k-1) = 4 total).
  std::size_t pos = 0;
  int dma_lines = 0;
  while ((pos = s.find("1 DMA", pos)) != std::string::npos) {
    ++dma_lines;
    pos += 5;
  }
  EXPECT_EQ(dma_lines, 4);
}

TEST(Report, NaiveRingScheduleShowsQuadraticDma) {
  const std::string s = render_schedule(jacobi::OrderingKind::kRing, 3,
                                        MemoryStrategy::kNaive);
  // 2k(k-1) = 12 DMAs over 4 transitions -> 3 per transition.
  std::size_t pos = 0;
  int count = 0;
  while ((pos = s.find("3 DMA", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 4);
}

}  // namespace
}  // namespace hsvd::accel
