// Tests for the execution trace recorder and its simulator integration.
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "versal/array.hpp"
#include "versal/trace.hpp"

namespace hsvd::versal {
namespace {

TEST(Trace, RecordsAndAggregates) {
  TraceRecorder trace;
  trace.record(TraceKind::kKernel, "core(0,0)", "orth", 0.0, 1e-6);
  trace.record(TraceKind::kKernel, "core(0,1)", "orth", 1e-6, 2e-6);
  trace.record(TraceKind::kDma, "dma(0,0)", "c1", 0.0, 5e-7);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_NEAR(trace.busy_seconds(TraceKind::kKernel), 3e-6, 1e-15);
  EXPECT_NEAR(trace.busy_seconds(TraceKind::kDma), 5e-7, 1e-15);
  EXPECT_DOUBLE_EQ(trace.busy_seconds(TraceKind::kDdr), 0.0);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, ChromeJsonStructure) {
  TraceRecorder trace;
  trace.record(TraceKind::kKernel, "core(0,0)", "orth c1/c2", 1e-6, 2e-6);
  trace.record(TraceKind::kStream, "stream(1,1)", "pkt \"x\"", 0.0, 1e-7);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stream\""), std::string::npos);
  // Quotes inside labels must be escaped.
  EXPECT_NE(json.find("pkt \\\"x\\\""), std::string::npos);
  // Timestamps are microseconds: 1e-6 s -> 1.
  EXPECT_NE(json.find("\"ts\":1,"), std::string::npos);
}

TEST(Trace, LanesGetStableThreadNames) {
  TraceRecorder trace;
  trace.record(TraceKind::kKernel, "laneA", "x", 0, 1);
  trace.record(TraceKind::kKernel, "laneB", "y", 0, 1);
  trace.record(TraceKind::kKernel, "laneA", "z", 1, 1);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"laneA\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"laneB\""), std::string::npos);
}

TEST(Trace, AttachesToArraySim) {
  ArrayGeometry geo(4, 4);
  AieArraySim sim(geo, vck190());
  TraceRecorder trace;
  sim.attach_trace(&trace);
  sim.run_kernel({1, 1}, 0.0, 1e-6);
  sim.dma_move({0, 0}, {2, 2}, "k", 0.0, 1024);
  Packet p;
  p.payload.assign(8, 0.0f);
  sim.stream_packet({1, 0}, p, 0.0, false);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_GT(trace.busy_seconds(TraceKind::kKernel), 0.0);
  EXPECT_GT(trace.busy_seconds(TraceKind::kDma), 0.0);
  EXPECT_GT(trace.busy_seconds(TraceKind::kStream), 0.0);
  // Detach stops recording.
  sim.attach_trace(nullptr);
  sim.run_kernel({1, 1}, 0.0, 1e-6);
  EXPECT_EQ(trace.events().size(), 3u);
}

TEST(Trace, AcceleratorEndToEndTrace) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 16;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 1;
  accel::HeteroSvdAccelerator acc(cfg);
  TraceRecorder trace;
  acc.attach_trace(&trace);
  auto run = acc.estimate(1);
  EXPECT_GT(trace.events().size(), 100u);  // kernels + packets + DMA
  // Every event ends within the simulated makespan.
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_LE(e.start_s + e.duration_s, run.task_seconds * 1.0001);
  }
}

TEST(Trace, WriteFileRoundTrip) {
  TraceRecorder trace;
  trace.record(TraceKind::kPlio, "tx0", "block", 0.0, 1e-6);
  const std::string path = "/tmp/hsvd_trace_test.json";
  ASSERT_TRUE(trace.write_chrome_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf).substr(0, 15), "{\"traceEvents\":");
}

}  // namespace
}  // namespace hsvd::versal
