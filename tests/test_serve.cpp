// Serving-layer tests: clocks and cancel tokens, backoff determinism,
// circuit-breaker transitions, checkpoint files, the SvdServer's
// admission/deadline/retry/breaker behavior, and checkpoint/resume for
// campaigns and DSE sweeps. Everything time-dependent runs on a fake
// clock -- no real sleeps anywhere in this file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/campaign.hpp"
#include "common/checkpoint.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "obs/obs.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/server.hpp"
#include "versal/faults.hpp"

namespace hsvd {
namespace {

using common::BackoffSchedule;
using common::CancelToken;
using common::CheckpointFile;
using common::FakeClock;
using common::RetryPolicy;
using serve::BreakerPolicy;
using serve::BreakerState;
using serve::CircuitBreaker;
using serve::Request;
using serve::Response;
using serve::ServeStatus;
using serve::ServerOptions;
using serve::SvdServer;

// A clock that jumps forward on every read: each now_seconds() returns
// step, 2*step, 3*step, ... Lets a single-threaded test expire a
// deadline *during* a run, at whichever slot-chain boundary polls it.
class SteppingClock final : public common::Clock {
 public:
  explicit SteppingClock(double step) : step_(step) {}
  double now_seconds() const override {
    return step_ * static_cast<double>(
                       1 + calls_.fetch_add(1, std::memory_order_relaxed));
  }
  void sleep_for(double) override {}

 private:
  double step_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

accel::HeteroSvdConfig small_config() {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 2;
  cfg.iterations = 3;
  return cfg;
}

linalg::MatrixF small_matrix(std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(24, 16, rng).cast<float>();
}

serve::Request plain_request(linalg::MatrixF matrix) {
  serve::Request request;
  request.matrix = std::move(matrix);
  return request;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "hsvd_" + name;
  std::remove(path.c_str());  // stale files from earlier runs would replay
  return path;
}

// One-shot corrupting fault: drops the first packet into a real entry
// tile of the floorplan. With fault_retries = 0 the affected task fails
// its run; the injector's trigger is then consumed, so a re-submission
// succeeds -- the canonical transient failure.
versal::FaultPlan one_shot_drop(const accel::HeteroSvdConfig& config) {
  accel::HeteroSvdAccelerator probe(config);
  versal::FaultPlan plan;
  plan.faults.push_back({versal::FaultKind::kStreamDrop,
                         probe.placement().tasks[0].orth.front()[0], 0, 0, 0.0,
                         1.0});
  return plan;
}

// Sticky fault: the tile's core never completes again, so every attempt
// through the same fabric fails. Used to feed the breaker.
versal::FaultPlan sticky_hang(const accel::HeteroSvdConfig& config) {
  accel::HeteroSvdAccelerator probe(config);
  versal::FaultPlan plan;
  plan.faults.push_back({versal::FaultKind::kTileHang,
                         probe.placement().tasks[0].orth.front()[0], 0, 0, 0.0,
                         1.0});
  return plan;
}

// ---------------------------------------------------------------- clocks

TEST(ServeClock, FakeClockAdvancesInsteadOfSleeping) {
  FakeClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 10.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 12.5);
  clock.sleep_for(0.5);  // a fake sleep is an advance
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 13.0);
  clock.sleep_for(-1.0);  // non-positive sleeps are no-ops
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 13.0);
}

TEST(ServeClock, CancelTokenBudgetExpiryAndManualCancel) {
  FakeClock clock(0.0);
  CancelToken token = CancelToken::with_budget(clock, 2.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_DOUBLE_EQ(token.remaining_seconds(), 2.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(token.remaining_seconds(), 0.5);
  clock.advance(0.5);
  EXPECT_TRUE(token.expired());
  EXPECT_DOUBLE_EQ(token.remaining_seconds(), 0.0);

  CancelToken manual;  // no deadline: only cancel() expires it
  EXPECT_FALSE(manual.has_deadline());
  EXPECT_FALSE(manual.expired());
  EXPECT_TRUE(std::isinf(manual.remaining_seconds()));
  manual.cancel();
  EXPECT_TRUE(manual.expired());
  EXPECT_DOUBLE_EQ(manual.remaining_seconds(), 0.0);

  EXPECT_THROW(CancelToken::with_budget(clock, 0.0), InputError);
  EXPECT_THROW(CancelToken::with_budget(clock, -1.0), InputError);
}

// --------------------------------------------------------------- backoff

TEST(ServeBackoff, SameSeedAndStreamReplayBitForBit) {
  RetryPolicy policy;
  policy.seed = 42;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 1.0;
  policy.jitter = 0.5;

  BackoffSchedule a(policy, 7);
  BackoffSchedule b(policy, 7);
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(a.delay_seconds(k), b.delay_seconds(k)) << "retry " << k;
  }

  // A different stream (another request) draws a different schedule.
  BackoffSchedule c(policy, 7);
  BackoffSchedule d(policy, 8);
  bool any_differ = false;
  for (int k = 1; k <= 8; ++k) {
    if (c.delay_seconds(k) != d.delay_seconds(k)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ServeBackoff, DelaysGrowExponentiallyWithinJitterBandAndCap) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter = 0.5;
  BackoffSchedule schedule(policy, 0);
  for (int k = 1; k <= 10; ++k) {
    double expected = 0.01;
    for (int i = 1; i < k; ++i) expected = std::min(expected * 2.0, 0.05);
    const double d = schedule.delay_seconds(k);
    EXPECT_GE(d, 0.5 * expected) << "retry " << k;
    EXPECT_LE(d, expected) << "retry " << k;
  }
}

TEST(ServeBackoff, ZeroJitterIsDeterministicWithoutRandomness) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.25;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_seconds = 2.0;
  policy.jitter = 0.0;
  BackoffSchedule schedule(policy, 99);
  EXPECT_DOUBLE_EQ(schedule.delay_seconds(1), 0.25);
  EXPECT_DOUBLE_EQ(schedule.delay_seconds(2), 0.75);
  EXPECT_DOUBLE_EQ(schedule.delay_seconds(3), 2.0);  // capped
  EXPECT_DOUBLE_EQ(schedule.delay_seconds(4), 2.0);
}

TEST(ServeBackoff, PolicyValidationRejectsNonsense) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());
  RetryPolicy bad = ok;
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), InputError);
  bad = ok;
  bad.initial_backoff_seconds = -0.1;
  EXPECT_THROW(bad.validate(), InputError);
  bad = ok;
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(bad.validate(), InputError);
  bad = ok;
  bad.max_backoff_seconds = bad.initial_backoff_seconds / 2.0;
  EXPECT_THROW(bad.validate(), InputError);
  bad = ok;
  bad.jitter = 1.5;
  EXPECT_THROW(bad.validate(), InputError);
}

// --------------------------------------------------------------- breaker

TEST(ServeBreaker, OpensAfterConsecutiveFailuresThenHalfOpensAndCloses) {
  FakeClock clock;
  BreakerPolicy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 10.0;
  policy.half_open_probes = 1;
  policy.close_threshold = 2;
  CircuitBreaker breaker(policy, &clock);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // 2 < threshold
  breaker.record_success();                           // resets the streak
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());  // fast-fail while open

  clock.advance(9.9);
  EXPECT_FALSE(breaker.allow());  // still cooling
  clock.advance(0.1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());    // the one probe slot
  EXPECT_FALSE(breaker.allow());   // concurrency-limited
  breaker.record_success();        // 1 of close_threshold = 2
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(ServeBreaker, FailedProbeReopensAndRestartsTheCooldown) {
  FakeClock clock;
  BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_seconds = 5.0;
  CircuitBreaker breaker(policy, &clock);

  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock.advance(5.0);
  EXPECT_TRUE(breaker.allow());  // probe
  breaker.record_failure();      // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  clock.advance(4.0);
  EXPECT_FALSE(breaker.allow());  // cooldown restarted, not resumed
  clock.advance(1.0);
  EXPECT_TRUE(breaker.allow());
}

TEST(ServeBreaker, NeutralOutcomeReleasesTheProbeSlotWithoutJudging) {
  FakeClock clock;
  BreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_seconds = 1.0;
  policy.half_open_probes = 1;
  policy.close_threshold = 1;
  CircuitBreaker breaker(policy, &clock);

  breaker.record_failure();
  clock.advance(1.0);
  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  breaker.record_neutral();  // e.g. the probe expired its deadline
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());  // slot free again
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// ------------------------------------------------------------ checkpoint

TEST(ServeCheckpoint, RecordsRoundTripAcrossReopen) {
  const std::string path = temp_path("ckpt_roundtrip");
  {
    CheckpointFile ckpt(path, "tag-a");
    ckpt.record("plain", "value");
    ckpt.record("tabs\tand\nnewlines\r", "payload\twith\\escapes\ntoo");
    ckpt.record("plain", "overwritten");
    EXPECT_EQ(ckpt.size(), 2u);
  }
  CheckpointFile reopened(path, "tag-a");
  EXPECT_EQ(reopened.size(), 2u);
  ASSERT_TRUE(reopened.contains("plain"));
  EXPECT_EQ(*reopened.find("plain"), "overwritten");
  ASSERT_TRUE(reopened.contains("tabs\tand\nnewlines\r"));
  EXPECT_EQ(*reopened.find("tabs\tand\nnewlines\r"),
            "payload\twith\\escapes\ntoo");
  EXPECT_EQ(reopened.find("missing"), nullptr);
}

TEST(ServeCheckpoint, EscapeUnescapeAreInverse) {
  const std::string raw = "a\\b\tc\nd\re\\t";
  EXPECT_EQ(CheckpointFile::unescape(CheckpointFile::escape(raw)), raw);
  EXPECT_EQ(CheckpointFile::escape("x\ty"), "x\\ty");
}

TEST(ServeCheckpoint, TagMismatchStartsEmptyAndRewrites) {
  const std::string path = temp_path("ckpt_tag");
  {
    CheckpointFile ckpt(path, "seed-1");
    ckpt.record("trial:0", "old");
  }
  {
    // Different parameters: the stale records must not be visible.
    CheckpointFile ckpt(path, "seed-2");
    EXPECT_EQ(ckpt.size(), 0u);
    ckpt.record("trial:0", "new");
  }
  CheckpointFile reopened(path, "seed-2");
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(*reopened.find("trial:0"), "new");
  // And the old tag no longer matches either.
  CheckpointFile stale(path, "seed-1");
  EXPECT_EQ(stale.size(), 0u);
}

TEST(ServeCheckpoint, TornTailLineFromAKillIsTolerated) {
  const std::string path = temp_path("ckpt_torn");
  {
    CheckpointFile ckpt(path, "tag");
    ckpt.record("done", "payload");
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "halfwritten-no-tab";  // kill mid-record, no trailing newline
  }
  CheckpointFile reopened(path, "tag");
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_TRUE(reopened.contains("done"));
}

TEST(ServeCheckpoint, EmptyPathOrTagIsAnInputError) {
  EXPECT_THROW(CheckpointFile("", "tag"), InputError);
  EXPECT_THROW(CheckpointFile(temp_path("ckpt_valid"), ""), InputError);
  EXPECT_THROW(CheckpointFile(temp_path("ckpt_valid"), "two\nlines"),
               InputError);
}

// ---------------------------------------------------------------- server

TEST(ServeServer, FullQueueShedsInsteadOfBlocking) {
  FakeClock clock;
  obs::ObsContext observer;
  ServerOptions options;
  options.queue_capacity = 2;
  options.workers = 1;
  options.svd.config = small_config();
  options.svd.want_v = false;
  options.svd.threads = 1;
  options.clock = &clock;
  options.observer = &observer;
  options.start_paused = true;  // nothing drains until resume()
  SvdServer server(options);

  auto f1 = server.submit(small_matrix(1));
  auto f2 = server.submit(small_matrix(2));
  auto f3 = server.submit(small_matrix(3));
  // The third request resolves immediately: shed, never queued.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const Response shed = f3.get();
  EXPECT_EQ(shed.status, ServeStatus::kShed);
  EXPECT_EQ(shed.attempts, 0);

  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queue_depth, 2u);
  EXPECT_EQ(stats.peak_queue_depth, 2u);

  server.resume();
  EXPECT_EQ(f1.get().status, ServeStatus::kOk);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
  server.shutdown();

  // Submitting after shutdown sheds too.
  const Response late = server.serve(plain_request(small_matrix(4)));
  EXPECT_EQ(late.status, ServeStatus::kShed);

  const auto counters = observer.metrics().snapshot().counters;
  EXPECT_EQ(counters.at("serve.submitted"), 4u);
  EXPECT_EQ(counters.at("serve.shed"), 2u);
  EXPECT_EQ(counters.at("serve.ok"), 2u);
}

TEST(ServeServer, DeadlineExpiredInQueueFailsFastWithoutRunning) {
  FakeClock clock;
  ServerOptions options;
  options.queue_capacity = 4;
  options.workers = 1;
  options.svd.config = small_config();
  options.svd.threads = 1;
  options.clock = &clock;
  options.start_paused = true;
  SvdServer server(options);

  auto doomed = server.submit(small_matrix(1), /*deadline_seconds=*/1.0);
  auto healthy = server.submit(small_matrix(2));  // no deadline
  clock.advance(5.0);  // the deadline passes while both sit in the queue
  server.resume();

  const Response expired = doomed.get();
  EXPECT_EQ(expired.status, ServeStatus::kExpired);
  EXPECT_EQ(expired.attempts, 0);  // never reached the fabric
  EXPECT_GE(expired.queue_seconds, 5.0);
  EXPECT_EQ(healthy.get().status, ServeStatus::kOk);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST(ServeServer, TransientFaultIsRetriedToSuccess) {
  FakeClock clock;
  const auto config = small_config();
  versal::FaultInjector injector(one_shot_drop(config));

  ServerOptions options;
  options.queue_capacity = 4;
  options.workers = 1;
  options.svd.config = config;
  options.svd.threads = 1;
  options.svd.fault_retries = 0;  // surface the fault to the server
  options.retry.max_attempts = 3;
  options.retry.seed = 7;
  options.clock = &clock;
  SvdServer server(options);

  Request request;
  request.matrix = small_matrix(10);
  request.fault_injector = &injector;
  const Response response = server.serve(std::move(request));
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(response.attempts, 2);  // failed once, succeeded on the retry

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(clock.now_seconds(), 0.0);  // the backoff advanced the clock
}

TEST(ServeServer, BreakerTripsFastFailsAndClosesAfterAProbe) {
  FakeClock clock;
  const auto config = small_config();
  const versal::FaultPlan hang = sticky_hang(config);

  ServerOptions options;
  options.queue_capacity = 4;
  options.workers = 1;
  options.svd.config = config;
  options.svd.threads = 1;
  options.svd.fault_retries = 0;
  options.retry.max_attempts = 1;  // no retries: failures hit the breaker
  options.breaker.failure_threshold = 2;
  options.breaker.open_seconds = 5.0;
  options.breaker.close_threshold = 1;
  options.clock = &clock;
  SvdServer server(options);

  // Two sticky-fault requests in a row trip the breaker.
  for (int i = 0; i < 2; ++i) {
    versal::FaultInjector injector(hang);
    Request request;
    request.matrix = small_matrix(20 + static_cast<std::uint64_t>(i));
    request.fault_injector = &injector;
    EXPECT_EQ(server.serve(std::move(request)).status, ServeStatus::kFailed);
  }
  EXPECT_EQ(server.breaker_state(), BreakerState::kOpen);

  // A healthy request fast-fails while the breaker is open...
  const Response blocked = server.serve(plain_request(small_matrix(30)));
  EXPECT_EQ(blocked.status, ServeStatus::kCircuitOpen);
  EXPECT_EQ(blocked.attempts, 0);

  // ...and after the cooldown a healthy probe closes it again.
  clock.advance(5.0);
  const Response probe = server.serve(plain_request(small_matrix(31)));
  EXPECT_EQ(probe.status, ServeStatus::kOk);
  EXPECT_EQ(server.breaker_state(), BreakerState::kClosed);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.circuit_open, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
}

TEST(ServeServer, InvalidOptionsAreRejectedAtConstruction) {
  ServerOptions options;
  options.queue_capacity = 0;
  EXPECT_THROW(SvdServer bad(std::move(options)), InputError);
  options = ServerOptions();
  options.workers = 0;
  EXPECT_THROW(SvdServer bad(std::move(options)), InputError);
  options = ServerOptions();
  options.default_deadline_seconds = -1.0;
  EXPECT_THROW(SvdServer bad(std::move(options)), InputError);
  options = ServerOptions();
  options.breaker.failure_threshold = 0;
  EXPECT_THROW(SvdServer bad(std::move(options)), InputError);
}

// ------------------------------------------------------ facade deadlines

TEST(ServeCancel, CancelledTokenRejectsBeforeTheRunStarts) {
  CancelToken token;
  token.cancel();
  SvdOptions options;
  options.config = small_config();
  options.cancel = &token;
  EXPECT_THROW(svd(small_matrix(1), options), DeadlineExceeded);
  EXPECT_THROW(svd_batch({small_matrix(1), small_matrix(2)}, options),
               DeadlineExceeded);
}

TEST(ServeCancel, DeadlineExpiresMidBatchAtASlotChainBoundary) {
  // The stepping clock jumps 1s per read, so a few boundary polls into
  // the batch the 100s budget is blown and the run must abandon work
  // cooperatively instead of finishing all four tasks.
  SteppingClock clock(30.0);
  CancelToken token(clock, 100.0);
  SvdOptions options;
  options.config = small_config();
  options.threads = 1;
  options.cancel = &token;
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 4; ++i) batch.push_back(small_matrix(40 + i));
  EXPECT_THROW(svd_batch(batch, options), DeadlineExceeded);
}

TEST(ServeCancel, FacadeRetryResubmitsOnlyTheFailedTasks) {
  FakeClock clock;
  const auto config = small_config();
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 4; ++i) batch.push_back(small_matrix(50 + i));

  SvdOptions clean_options;
  clean_options.config = config;
  clean_options.threads = 1;
  const BatchSvd clean = svd_batch(batch, clean_options);
  for (const auto& r : clean.results) ASSERT_EQ(r.status, SvdStatus::kOk);

  versal::FaultInjector injector(one_shot_drop(config));
  SvdOptions options = clean_options;
  options.fault_retries = 0;
  options.fault_injector = &injector;
  common::RetryPolicy retry;
  retry.max_attempts = 2;
  options.retry = retry;
  options.clock = &clock;
  const BatchSvd out = svd_batch(batch, options);

  EXPECT_EQ(out.failed_tasks, 0);
  int retried = 0;
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    EXPECT_EQ(out.results[i].status, SvdStatus::kOk) << "task " << i;
    if (out.results[i].retries > 0) {
      ++retried;
    } else {
      // Untouched tasks stay bit-identical to the fault-free run.
      EXPECT_EQ(out.results[i].sigma, clean.results[i].sigma) << "task " << i;
      EXPECT_EQ(out.results[i].iterations, clean.results[i].iterations);
    }
    // Retried or not, the final factors match the clean decomposition.
    EXPECT_EQ(out.results[i].sigma, clean.results[i].sigma) << "task " << i;
  }
  EXPECT_EQ(retried, 1);  // one dropped packet fails exactly one task
  EXPECT_GT(clock.now_seconds(), 0.0);  // backoff ran on the fake clock
}

TEST(ServeCancel, SingleMatrixRetryRecoversFromATransientFault) {
  FakeClock clock;
  const auto config = small_config();
  versal::FaultInjector injector(one_shot_drop(config));

  SvdOptions options;
  options.config = config;
  options.threads = 1;
  options.fault_retries = 0;
  options.fault_injector = &injector;
  common::RetryPolicy retry;
  retry.max_attempts = 3;
  options.retry = retry;
  options.clock = &clock;

  const Svd out = svd(small_matrix(60), options);
  EXPECT_EQ(out.status, SvdStatus::kOk);
  EXPECT_EQ(out.retries, 1);

  // Without the retry policy the same fault surfaces as FaultDetected.
  versal::FaultInjector again(one_shot_drop(config));
  SvdOptions no_retry;
  no_retry.config = config;
  no_retry.threads = 1;
  no_retry.fault_retries = 0;
  no_retry.fault_injector = &again;
  EXPECT_THROW(svd(small_matrix(60), no_retry), FaultDetected);
}

// ------------------------------------------------------ option validation

TEST(ServeValidation, MalformedSvdOptionsAreTypedInputErrors) {
  const linalg::MatrixF a = small_matrix(70);
  SvdOptions options;
  options.fault_retries = -1;
  EXPECT_THROW(svd(a, options), InputError);
  options = SvdOptions();
  options.threads = -2;
  EXPECT_THROW(svd(a, options), InputError);
  options = SvdOptions();
  options.precision = 0.0;
  EXPECT_THROW(svd(a, options), InputError);
  options = SvdOptions();
  options.precision = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(svd(a, options), InputError);
  options = SvdOptions();
  common::RetryPolicy retry;
  retry.max_attempts = 0;
  options.retry = retry;
  EXPECT_THROW(svd(a, options), InputError);
  // svd_batch validates through the same gate.
  options = SvdOptions();
  options.fault_retries = -1;
  EXPECT_THROW(svd_batch({a}, options), InputError);
}

// ------------------------------------------------------- campaign resume

TEST(ServeCampaignResume, InterruptedSweepResumesToAnIdenticalCsv) {
  accel::CampaignOptions options;
  options.batch = 2;
  options.trials_per_kind = 1;
  options.seed = 5;
  options.kinds = {versal::FaultKind::kTileHang, versal::FaultKind::kStreamDrop,
                   versal::FaultKind::kDmaStall};

  // Uninterrupted reference sweep (no checkpoint).
  const auto full = accel::run_campaign(options);
  ASSERT_EQ(full.size(), 3u);
  const std::string full_csv = accel::campaign_csv(full);

  // The same sweep killed after every trial: each invocation executes
  // one new trial and replays the checkpointed prefix.
  options.checkpoint_path = temp_path("campaign_resume");
  options.max_new_trials = 1;
  EXPECT_EQ(accel::run_campaign(options).size(), 1u);
  EXPECT_EQ(accel::run_campaign(options).size(), 2u);
  const auto resumed = accel::run_campaign(options);
  ASSERT_EQ(resumed.size(), 3u);
  EXPECT_EQ(accel::campaign_csv(resumed), full_csv);

  // A fourth run replays everything from the checkpoint: same CSV.
  options.max_new_trials = 0;
  EXPECT_EQ(accel::campaign_csv(accel::run_campaign(options)), full_csv);
}

TEST(ServeCampaignResume, CheckpointFromDifferentOptionsIsNeverReused) {
  accel::CampaignOptions options;
  options.batch = 2;
  options.trials_per_kind = 1;
  options.seed = 6;
  options.kinds = {versal::FaultKind::kStreamDrop};
  options.checkpoint_path = temp_path("campaign_tag");
  const auto first = accel::run_campaign(options);
  ASSERT_EQ(first.size(), 1u);

  // A different seed means different trials: the tag changes and the
  // sweep re-executes instead of replaying the stale record.
  accel::CampaignOptions other = options;
  other.seed = 7;
  EXPECT_NE(accel::campaign_checkpoint_tag(options),
            accel::campaign_checkpoint_tag(other));
  const auto second = accel::run_campaign(other);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first.front().plan_seed, second.front().plan_seed);
}

// ------------------------------------------------------------ DSE resume

TEST(ServeDseResume, ReplayedSweepMatchesWithZeroPlacementCalls) {
  dse::DseRequest request;
  request.rows = 32;
  request.cols = 16;
  request.batch = 2;
  request.iterations = 2;
  request.threads = 1;
  request.checkpoint_path = temp_path("dse_resume");

  dse::DesignSpaceExplorer explorer;
  const auto fresh = explorer.enumerate(request);
  ASSERT_FALSE(fresh.empty());
  EXPECT_GT(explorer.last_stats().placement_calls, 0u);

  dse::DesignSpaceExplorer replayer;
  const auto replayed = replayer.enumerate(request);
  EXPECT_EQ(replayer.last_stats().placement_calls, 0u);

  ASSERT_EQ(replayed.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(replayed[i].p_eng, fresh[i].p_eng) << "point " << i;
    EXPECT_EQ(replayed[i].p_task, fresh[i].p_task) << "point " << i;
    EXPECT_EQ(replayed[i].frequency_hz, fresh[i].frequency_hz);
    EXPECT_EQ(replayed[i].latency_seconds, fresh[i].latency_seconds);
    EXPECT_EQ(replayed[i].throughput_tasks_per_s,
              fresh[i].throughput_tasks_per_s);
    EXPECT_EQ(replayed[i].power_watts, fresh[i].power_watts);
    EXPECT_EQ(replayed[i].resources.lut, fresh[i].resources.lut);
    EXPECT_EQ(replayed[i].latency.t_task, fresh[i].latency.t_task);
  }
}

}  // namespace
}  // namespace hsvd
