// Tests for the NoC/DDRMC model and the threshold-Jacobi option, plus a
// convergence-rate property test (Jacobi's quadratic tail).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "jacobi/convergence.hpp"
#include "jacobi/hestenes.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"
#include "versal/noc.hpp"

namespace hsvd {
namespace {

TEST(Noc, PortsServeSlotsRoundRobin) {
  versal::NocModel noc(4, 1e9, 0.0);
  EXPECT_EQ(noc.ports(), 4);
  EXPECT_EQ(noc.port_for_slot(0), 0);
  EXPECT_EQ(noc.port_for_slot(5), 1);
  EXPECT_EQ(noc.port_for_slot(11), 3);
  EXPECT_THROW(noc.port_for_slot(-1), std::invalid_argument);
}

TEST(Noc, PortsAreIndependentChannels) {
  versal::NocModel noc(2, 1e9, 0.0);
  const double a = noc.transfer(0, 0.0, 1e6);  // 1 ms
  const double b = noc.transfer(0, 0.0, 1e6);  // queued: 2 ms
  const double c = noc.transfer(1, 0.0, 1e6);  // parallel port: 1 ms
  EXPECT_NEAR(a, 1e-3, 1e-12);
  EXPECT_NEAR(b, 2e-3, 1e-12);
  EXPECT_NEAR(c, 1e-3, 1e-12);
  EXPECT_THROW(noc.transfer(2, 0.0, 1.0), std::invalid_argument);
}

TEST(Noc, TraversalLatencyCharged) {
  versal::NocModel noc(1, 1e9, 150e-9);
  EXPECT_NEAR(noc.transfer(0, 0.0, 1e3), 150e-9 + 1e-6, 1e-15);
}

TEST(Noc, ResetClearsQueues) {
  versal::NocModel noc = versal::NocModel::vck190();
  noc.transfer(0, 0.0, 1e6);
  noc.reset_time();
  const double after = noc.transfer(0, 0.0, 1e3);
  EXPECT_LT(after, 1e-5);
}

TEST(Noc, Vck190DefaultsMatchDeviceResources) {
  auto noc = versal::NocModel::vck190();
  auto dev = versal::vck190();
  EXPECT_EQ(noc.ports(), dev.ddr_ports);
  EXPECT_DOUBLE_EQ(noc.port_bandwidth(), dev.ddr_bytes_per_s);
}

TEST(ThresholdJacobi, SkipsSmallRotationsButStillConverges) {
  Rng rng(91);
  auto a = linalg::random_gaussian(24, 12, rng).cast<float>();
  jacobi::HestenesOptions plain;
  jacobi::HestenesOptions thresholded = plain;
  thresholded.rotation_threshold = 1e-7;  // below the 1e-6 precision target
  auto r_plain = jacobi::hestenes_svd(a, plain);
  auto r_thresh = jacobi::hestenes_svd(a, thresholded);
  EXPECT_TRUE(r_thresh.converged);
  auto ref = linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r_thresh.sigma.begin(), r_thresh.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
  // The thresholded run cannot take more sweeps than a few extra.
  EXPECT_LE(r_thresh.sweeps, r_plain.sweeps + 2);
}

TEST(ThresholdJacobi, RotationLevelSkipBehaviour) {
  // Coherence 1e-4 with threshold 1e-3 -> identity; with 1e-5 -> rotate.
  const float aii = 1.0f, ajj = 1.0f;
  const float aij = 1e-4f;  // coherence 1e-4
  EXPECT_TRUE(jacobi::compute_rotation(aii, ajj, aij, 1e-3f).identity);
  EXPECT_FALSE(jacobi::compute_rotation(aii, ajj, aij, 1e-5f).identity);
}

TEST(ConvergenceRate, JacobiTailIsSuperlinear) {
  // Track the sweep-max coherence of a serial Hestenes run: once below
  // ~1e-1 the classical quadratic convergence should roughly square the
  // rate per sweep (we assert a conservative super-linear factor).
  Rng rng(92);
  auto a = linalg::random_gaussian(32, 16, rng).cast<float>();
  linalg::MatrixF b = a;
  auto schedule = jacobi::make_schedule(jacobi::OrderingKind::kShiftingRing, 16);
  std::vector<double> rates;
  for (int sweep = 0; sweep < 8; ++sweep) {
    jacobi::ConvergenceTracker tracker(0.0);
    tracker.begin_sweep();
    for (const auto& round : schedule) {
      for (const auto& pair : round) {
        auto bi = b.col(static_cast<std::size_t>(pair.left));
        auto bj = b.col(static_cast<std::size_t>(pair.right));
        const float aij = linalg::dot<float>(bi, bj);
        const float aii = linalg::dot<float>(bi, bi);
        const float ajj = linalg::dot<float>(bj, bj);
        tracker.observe(jacobi::pair_coherence(aii, ajj, aij));
        auto rot = jacobi::compute_rotation(aii, ajj, aij);
        if (!rot.identity) linalg::apply_rotation(bi, bj, rot.c, rot.s);
      }
    }
    rates.push_back(tracker.sweep_rate());
  }
  // Find the first sweep with rate < 0.2 and require at least a 10x drop
  // within the following two sweeps (the quadratic tail; the sweep-max
  // statistic is noisy enough that single-sweep ratios wobble).
  for (std::size_t s = 0; s + 2 < rates.size(); ++s) {
    if (rates[s] < 0.2 && rates[s] > 1e-12) {
      EXPECT_LT(rates[s + 2], rates[s] * 0.1)
          << "sweep " << s << ": " << rates[s] << " -> " << rates[s + 2];
      break;
    }
  }
  // And the final rate is tiny (float roundoff floor).
  EXPECT_LT(rates.back(), 1e-5);
}

}  // namespace
}  // namespace hsvd
