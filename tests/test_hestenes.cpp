// Tests for the serial Hestenes-Jacobi SVD against the double-precision
// reference, across all orderings (the co-designed ordering must be
// numerically equivalent to the classics).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "jacobi/hestenes.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::jacobi {
namespace {

using hsvd::Rng;
using hsvd::linalg::geometric_spectrum;
using hsvd::linalg::matrix_with_spectrum;
using hsvd::linalg::MatrixD;
using hsvd::linalg::MatrixF;
using hsvd::linalg::orthogonality_error;
using hsvd::linalg::random_gaussian;
using hsvd::linalg::reconstruction_error;
using hsvd::linalg::spectrum_distance;

MatrixF random_case(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_gaussian(rows, cols, rng).cast<float>();
}

TEST(Hestenes, MatchesReferenceSpectrum) {
  MatrixF a = random_case(16, 8, 31);
  HestenesResult r = hestenes_svd(a);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> got(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(got, ref.sigma), 1e-4);  // float arithmetic
}

TEST(Hestenes, FactorsReconstruct) {
  MatrixF a = random_case(20, 10, 32);
  HestenesResult r = hestenes_svd(a);
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(reconstruction_error(a.cast<double>(), r.u.cast<double>(), sigma,
                                 r.v.cast<double>()),
            1e-5);
  EXPECT_LT(orthogonality_error(r.u.cast<double>()), 1e-4);
  EXPECT_LT(orthogonality_error(r.v.cast<double>()), 1e-4);
}

TEST(Hestenes, ConvergesAndReportsRate) {
  MatrixF a = random_case(12, 6, 33);
  HestenesOptions opts;
  opts.precision = 1e-6;
  HestenesResult r = hestenes_svd(a, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_convergence_rate, 1e-6);
  EXPECT_GE(r.sweeps, 2);
}

TEST(Hestenes, FixedSweepsRunExactly) {
  MatrixF a = random_case(12, 6, 34);
  HestenesOptions opts;
  opts.fixed_sweeps = 6;  // the paper's Tables II/VI protocol
  HestenesResult r = hestenes_svd(a, opts);
  EXPECT_EQ(r.sweeps, 6);
}

TEST(Hestenes, SkipsVAccumulationWhenDisabled) {
  MatrixF a = random_case(8, 4, 35);
  HestenesOptions opts;
  opts.accumulate_v = false;
  HestenesResult r = hestenes_svd(a, opts);
  EXPECT_TRUE(r.v.empty());
  EXPECT_EQ(r.u.cols(), 4u);
}

TEST(Hestenes, RejectsOddColumns) {
  MatrixF a(6, 5);
  EXPECT_THROW(hestenes_svd(a), std::invalid_argument);
}

TEST(Hestenes, RejectsWideMatrix) {
  MatrixF a(4, 6);
  EXPECT_THROW(hestenes_svd(a), std::invalid_argument);
}

struct HestenesCase {
  OrderingKind kind;
  std::size_t rows;
  std::size_t cols;
  double condition;
};

class HestenesSweep : public ::testing::TestWithParam<HestenesCase> {};

TEST_P(HestenesSweep, AllOrderingsReachTheSameDecomposition) {
  const auto& p = GetParam();
  Rng rng(400 + p.rows + p.cols + static_cast<std::uint64_t>(p.kind));
  const auto spectrum = geometric_spectrum(p.cols, p.condition);
  MatrixD ad = matrix_with_spectrum(p.rows, p.cols, spectrum, rng);
  MatrixF a = ad.cast<float>();

  HestenesOptions opts;
  opts.ordering = p.kind;
  HestenesResult r = hestenes_svd(a, opts);

  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, spectrum), 5e-4)
      << to_string(p.kind) << " " << p.rows << "x" << p.cols;
  EXPECT_LT(reconstruction_error(ad, r.u.cast<double>(), sigma,
                                 r.v.cast<double>()),
            5e-5);
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsAndShapes, HestenesSweep,
    ::testing::Values(
        HestenesCase{OrderingKind::kRing, 8, 8, 10.0},
        HestenesCase{OrderingKind::kRoundRobin, 8, 8, 10.0},
        HestenesCase{OrderingKind::kShiftingRing, 8, 8, 10.0},
        HestenesCase{OrderingKind::kRing, 24, 16, 100.0},
        HestenesCase{OrderingKind::kRoundRobin, 24, 16, 100.0},
        HestenesCase{OrderingKind::kShiftingRing, 24, 16, 100.0},
        HestenesCase{OrderingKind::kShiftingRing, 32, 32, 1e3},
        HestenesCase{OrderingKind::kRing, 48, 32, 1e3},
        HestenesCase{OrderingKind::kShiftingRing, 40, 20, 1e4}),
    [](const auto& info) {
      std::string name = to_string(info.param.kind) + "_" +
                         std::to_string(info.param.rows) + "x" +
                         std::to_string(info.param.cols);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hsvd::jacobi
