// Determinism and kernel-accuracy tests for the host parallel engine:
// the thread pool, the fused linalg kernels (dot3 / fused rotation /
// incremental norms), the one-dot-per-pair Hestenes invariant, and the
// DSE placement memoization.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "jacobi/hestenes.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"

namespace hsvd {
namespace {

linalg::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

bool bit_identical(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---- thread pool ---------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  common::ThreadPool::shared().parallel_for(
      n, common::ThreadPool::hardware_threads(),
      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, InlineWhenSingleThreadedOrTiny) {
  std::vector<int> order;
  common::ThreadPool::shared().parallel_for(
      4, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  int calls = 0;
  common::ThreadPool::shared().parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  constexpr std::size_t outer = 8;
  constexpr std::size_t inner = 8;
  std::vector<std::atomic<int>> hits(outer * inner);
  common::ThreadPool::shared().parallel_for(outer, 4, [&](std::size_t o) {
    common::ThreadPool::shared().parallel_for(inner, 4, [&](std::size_t i) {
      hits[o * inner + i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < outer * inner; ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(common::ThreadPool::shared().parallel_for(
                   64, 4,
                   [&](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreadsPrefersRequestThenEnvThenHardware) {
  EXPECT_EQ(common::ThreadPool::resolve_threads(3), 3);
  ::setenv("HSVD_THREADS", "5", 1);
  EXPECT_EQ(common::ThreadPool::resolve_threads(0), 5);
  EXPECT_EQ(common::ThreadPool::resolve_threads(2), 2);
  ::unsetenv("HSVD_THREADS");
  EXPECT_EQ(common::ThreadPool::resolve_threads(0),
            common::ThreadPool::hardware_threads());
  EXPECT_GE(common::ThreadPool::hardware_threads(), 1);
}

// ---- fused kernels vs scalar references ----------------------------------

TEST(FusedKernels, Dot3MatchesThreeLaneDots) {
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 127u, 1000u}) {
    const auto xm = random_matrix(n, 1, 42 + n);
    const auto ym = random_matrix(n, 1, 99 + n);
    const std::span<const float> cx = xm.col(0);
    const std::span<const float> cy = ym.col(0);
    const auto g = linalg::dot3(cx, cy);
    // dot3 and dot share one summation tree (8 lanes + pairwise
    // reduction), so the fused traversal must agree bit for bit.
    EXPECT_EQ(g.aii, linalg::dot(cx, cx)) << "n=" << n;
    EXPECT_EQ(g.ajj, linalg::dot(cy, cy)) << "n=" << n;
    EXPECT_EQ(g.aij, linalg::dot(cx, cy)) << "n=" << n;
  }
}

TEST(FusedKernels, DotMatchesScalarReferenceWithinTolerance) {
  for (std::size_t n : {3u, 8u, 63u, 500u}) {
    const auto xm = random_matrix(n, 1, 7 + n);
    const auto ym = random_matrix(n, 1, 11 + n);
    const std::span<const float> x = xm.col(0);
    const std::span<const float> y = ym.col(0);
    double ref = 0.0;  // scalar left-to-right in double: tight reference
    for (std::size_t i = 0; i < n; ++i)
      ref += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    const float lane = linalg::dot(x, y);
    // The 8-lane tree only reorders the sum; error stays at rounding
    // scale (a few ulps of the accumulated magnitude).
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      mag += std::abs(static_cast<double>(x[i]) * static_cast<double>(y[i]));
    EXPECT_NEAR(lane, ref, 1e-5 * (mag + 1.0)) << "n=" << n;
  }
}

TEST(FusedKernels, FusedRotationBitIdenticalToScalarLoop) {
  for (std::size_t n : {5u, 8u, 16u, 123u}) {
    auto x0 = random_matrix(n, 1, 21 + n);
    auto y0 = random_matrix(n, 1, 22 + n);
    const float c = 0.8f;
    const float s = 0.6f;
    auto x1 = x0;
    auto y1 = y0;
    linalg::apply_rotation(x1.col(0), y1.col(0), c, s);
    for (std::size_t i = 0; i < n; ++i) {
      const float xi = x0.col(0)[i];
      const float yi = y0.col(0)[i];
      EXPECT_EQ(x1.col(0)[i], c * xi - s * yi) << "n=" << n << " i=" << i;
      EXPECT_EQ(y1.col(0)[i], s * xi + c * yi) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FusedKernels, RotatedNormsTrackTrueNormsThroughASweep) {
  // Chain 50 random rotations over one column pair; the closed-form
  // update must stay within float rounding of the freshly computed dots.
  constexpr std::size_t n = 96;
  auto x = random_matrix(n, 1, 31);
  auto y = random_matrix(n, 1, 32);
  std::span<const float> cx(x.col(0).data(), n);
  std::span<const float> cy(y.col(0).data(), n);
  float aii = linalg::dot(cx, cx);
  float ajj = linalg::dot(cy, cy);
  Rng rng(77);
  for (int k = 0; k < 50; ++k) {
    const float aij = linalg::dot(cx, cy);
    const float theta =
        static_cast<float>(rng.uniform(-0.5, 0.5));
    const float c = std::cos(theta);
    const float s = std::sin(theta);
    linalg::apply_rotation(x.col(0), y.col(0), c, s);
    linalg::rotated_norms(aii, ajj, aij, c, s, aii, ajj);
    const float true_ii = linalg::dot(cx, cx);
    const float true_jj = linalg::dot(cy, cy);
    EXPECT_NEAR(aii, true_ii, 1e-4f * (true_ii + 1.0f)) << "step " << k;
    EXPECT_NEAR(ajj, true_jj, 1e-4f * (true_jj + 1.0f)) << "step " << k;
  }
}

// ---- one-dot-per-pair invariant ------------------------------------------

TEST(HestenesCounters, ExactlyOneDotPerPairVisit) {
  auto a = random_matrix(32, 16, 501);
  jacobi::HestenesOptions opts;
  opts.fixed_sweeps = 6;
  const auto r = jacobi::hestenes_svd(a, opts);
  ASSERT_GT(r.pair_visits, 0u);
  // The incremental Gram-norm cache leaves only the off-diagonal dot in
  // the pair loop; diagonals come from the per-sweep norm refresh.
  EXPECT_EQ(r.pair_dots, r.pair_visits);
  EXPECT_EQ(r.norm_dots, static_cast<std::uint64_t>(r.sweeps) * a.cols());
  // Sanity: a full sweep of an n-column matrix visits n(n-1)/2 pairs.
  const std::uint64_t pairs_per_sweep = 16 * 15 / 2;
  EXPECT_EQ(r.pair_visits,
            static_cast<std::uint64_t>(r.sweeps) * pairs_per_sweep);
}

// ---- batch determinism across thread counts ------------------------------

TEST(ParallelBatch, SixteenTasksBitIdenticalAcrossThreadCounts) {
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(random_matrix(24, 12, 900 + i));

  SvdOptions base;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 4;  // = NoC DDRMC ports: the parallel chain path engages
  cfg.iterations = 8;
  base.config = cfg;

  SvdOptions seq = base;
  seq.threads = 1;
  const BatchSvd ref = svd_batch(batch, seq);

  for (int threads : {2, 4, common::ThreadPool::hardware_threads()}) {
    SvdOptions par = base;
    par.threads = threads;
    const BatchSvd got = svd_batch(batch, par);
    EXPECT_DOUBLE_EQ(got.batch_seconds, ref.batch_seconds)
        << "threads=" << threads;
    ASSERT_EQ(got.results.size(), ref.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i) {
      EXPECT_TRUE(bit_identical(got.results[i].u, ref.results[i].u))
          << "threads=" << threads << " task " << i;
      EXPECT_TRUE(bit_identical(got.results[i].sigma, ref.results[i].sigma))
          << "threads=" << threads << " task " << i;
      EXPECT_TRUE(bit_identical(got.results[i].v, ref.results[i].v))
          << "threads=" << threads << " task " << i;
      EXPECT_DOUBLE_EQ(got.results[i].accelerator_seconds,
                       ref.results[i].accelerator_seconds)
          << "threads=" << threads << " task " << i;
    }
  }
}

TEST(ParallelBatch, OversubscribedSlotsStaySequentialAndDeterministic) {
  // P_task > DDRMC ports: slots share NoC ports, so the engine must fall
  // back to the legacy interleaved order regardless of the thread count.
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(random_matrix(16, 8, 400 + i));
  SvdOptions base;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 6;
  cfg.iterations = 8;
  base.config = cfg;
  SvdOptions seq = base;
  seq.threads = 1;
  SvdOptions par = base;
  par.threads = common::ThreadPool::hardware_threads();
  const BatchSvd a = svd_batch(batch, seq);
  const BatchSvd b = svd_batch(batch, par);
  EXPECT_DOUBLE_EQ(a.batch_seconds, b.batch_seconds);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_TRUE(bit_identical(a.results[i].u, b.results[i].u)) << i;
    EXPECT_TRUE(bit_identical(a.results[i].sigma, b.results[i].sigma)) << i;
  }
}

TEST(ParallelBatch, DeriveVThreadCountInvariant) {
  auto a = random_matrix(64, 24, 808);
  SvdOptions opts;
  opts.want_v = false;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 8;
  opts.config = cfg;
  const Svd r = svd(a, opts);
  const auto v1 = derive_v(a, r.u, r.sigma, 1);
  const auto vn = derive_v(a, r.u, r.sigma,
                           common::ThreadPool::hardware_threads());
  EXPECT_TRUE(bit_identical(v1, vn));
}

// ---- DSE memoization ------------------------------------------------------

TEST(DseMemo, PlacementComputedAtMostOncePerPoint) {
  dse::DesignSpaceExplorer explorer;
  dse::DseRequest req;
  req.rows = req.cols = 128;
  req.batch = 8;
  req.threads = 1;
  const auto points = explorer.enumerate(req);
  ASSERT_FALSE(points.empty());
  const auto stats = explorer.last_stats();
  // Stage 1 walks P_task down from the architectural max and stops at
  // the first feasible point; stage 2 rescans 1..max and must serve that
  // stage-1 maximum from the memo instead of re-placing it. Every
  // (P_eng, P_task) placement is therefore attempted at most once: the
  // call count is bounded by the full Table I grid even though the two
  // stages together visit the maximum twice.
  EXPECT_LE(stats.placement_calls, 11u * 26u);
  EXPECT_GE(stats.placement_reuses, 1u);
  // One reuse per P_eng slice that reached stage 2 (its stage-1 max).
  std::vector<int> slices;
  for (const auto& p : points) {
    if (std::find(slices.begin(), slices.end(), p.p_eng) == slices.end())
      slices.push_back(p.p_eng);
  }
  EXPECT_EQ(stats.placement_reuses, slices.size());
  // Re-running resets the accounting rather than accumulating.
  (void)explorer.enumerate(req);
  EXPECT_EQ(explorer.last_stats().placement_calls, stats.placement_calls);
}

TEST(DseMemo, EnumerationThreadCountInvariant) {
  dse::DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 4;
  req.threads = 1;
  dse::DesignSpaceExplorer explorer;
  const auto seq = explorer.enumerate(req);
  req.threads = common::ThreadPool::hardware_threads();
  const auto par = explorer.enumerate(req);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].p_eng, par[i].p_eng) << i;
    EXPECT_EQ(seq[i].p_task, par[i].p_task) << i;
    EXPECT_DOUBLE_EQ(seq[i].latency_seconds, par[i].latency_seconds) << i;
    EXPECT_DOUBLE_EQ(seq[i].power_watts, par[i].power_watts) << i;
  }
}

}  // namespace
}  // namespace hsvd
