// The streaming stage pipeline (accel/pipeline.cpp) and its SPSC
// building block (common/spsc_queue.hpp).
//
// The pipeline's contract is strict: factors, simulated timings, and
// simulator stats bit-identical to the sequential slot-chain path, with
// clean teardown -- no deadlock, no stranded tile buffers -- on
// cancellation and on detected faults. The queue's contract is bounded
// backpressure plus drain-on-close semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/pipeline.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "versal/faults.hpp"

namespace hsvd {
namespace {

// ---- SpscQueue -----------------------------------------------------------

TEST(SpscQueue, FifoOrderAndDrainAfterClose) {
  common::SpscQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  // Remaining items are still delivered after close, in order.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // end-of-stream is sticky
}

TEST(SpscQueue, PushFailsOnceClosed) {
  common::SpscQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.push(7));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(SpscQueue, BoundedBackpressure) {
  // A fast producer against a consumer that samples the size on every
  // pop: the queue must never hold more than its capacity, and every
  // item must arrive exactly once, in order.
  constexpr int kItems = 2000;
  constexpr std::size_t kCapacity = 2;
  common::SpscQueue<int> q(kCapacity);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0;
  std::size_t max_seen = 0;
  while (auto item = q.pop()) {
    max_seen = std::max(max_seen, q.size() + 1);  // +1: the popped item
    ASSERT_EQ(*item, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
  EXPECT_LE(max_seen, kCapacity + 1);
}

TEST(SpscQueue, CloseWakesBlockedProducer) {
  common::SpscQueue<int> q(1);
  ASSERT_TRUE(q.push(1));  // fill to capacity
  std::atomic<bool> returned{false};
  std::atomic<bool> accepted{true};
  std::thread producer([&] {
    accepted.store(q.push(2));  // blocks: queue is full
    returned.store(true);
  });
  // The producer must be parked in push(); close() must wake it with a
  // failure rather than leaving it blocked forever.
  while (!returned.load()) {
    std::this_thread::yield();
    q.close();
  }
  producer.join();
  EXPECT_FALSE(accepted.load());
  EXPECT_EQ(q.pop(), 1);  // the pre-close item still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(SpscQueue, CloseWakesBlockedConsumer) {
  common::SpscQueue<int> q(1);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop(), std::nullopt);  // blocks: queue is empty
    returned.store(true);
  });
  while (!returned.load()) {
    std::this_thread::yield();
    q.close();
  }
  consumer.join();
}

// ---- Pipelined accelerator execution -------------------------------------

accel::HeteroSvdConfig small_config() {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  cfg.p_eng = 4;  // 4 blocks -> 3 tournament rounds of 2 pairs per sweep
  cfg.p_task = 1;
  cfg.iterations = 3;
  return cfg;
}

linalg::MatrixF small_matrix(std::uint64_t salt = 0) {
  Rng rng(0xB10C5ull + salt);
  return linalg::random_gaussian(32, 16, rng).cast<float>();
}

void expect_run_bits_equal(const accel::RunResult& a,
                           const accel::RunResult& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    const auto& x = a.tasks[t];
    const auto& y = b.tasks[t];
    ASSERT_EQ(x.u.rows(), y.u.rows());
    ASSERT_EQ(x.u.cols(), y.u.cols());
    EXPECT_EQ(std::memcmp(x.u.data().data(), y.u.data().data(),
                          x.u.data().size_bytes()),
              0);
    ASSERT_EQ(x.sigma.size(), y.sigma.size());
    EXPECT_EQ(std::memcmp(x.sigma.data(), y.sigma.data(),
                          x.sigma.size() * sizeof(float)),
              0);
    EXPECT_EQ(x.start_seconds, y.start_seconds);
    EXPECT_EQ(x.end_seconds, y.end_seconds);
    EXPECT_EQ(x.iterations, y.iterations);
    EXPECT_EQ(x.convergence_rate, y.convergence_rate);
  }
  EXPECT_EQ(a.batch_seconds, b.batch_seconds);
  EXPECT_EQ(a.stats.kernel_invocations, b.stats.kernel_invocations);
  EXPECT_EQ(a.stats.neighbour_transfers, b.stats.neighbour_transfers);
  EXPECT_EQ(a.stats.dma_transfers, b.stats.dma_transfers);
  EXPECT_EQ(a.stats.dma_bytes, b.stats.dma_bytes);
  EXPECT_EQ(a.stats.stream_packets, b.stats.stream_packets);
  EXPECT_EQ(a.stats.stream_bytes, b.stats.stream_bytes);
}

TEST(Pipeline, BitIdenticalToSequentialIncludingTimeline) {
  const linalg::MatrixF a = small_matrix();
  accel::HeteroSvdConfig cfg = small_config();
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator sequential(cfg);
  const accel::RunResult off = sequential.run({a});
  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator pipelined(cfg);
  const accel::RunResult on = pipelined.run({a});
  expect_run_bits_equal(off, on);
}

TEST(Pipeline, BatchBitIdenticalToSequential) {
  std::vector<linalg::MatrixF> batch;
  for (std::uint64_t i = 0; i < 3; ++i) batch.push_back(small_matrix(i));
  accel::HeteroSvdConfig cfg = small_config();
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator sequential(cfg);
  const accel::RunResult off = sequential.run(batch);
  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator pipelined(cfg);
  const accel::RunResult on = pipelined.run(batch);
  expect_run_bits_equal(off, on);
}

TEST(Pipeline, PrecisionModeBitIdenticalToSequential) {
  // Precision mode exercises the sweep barrier's convergence decisions
  // (should_terminate / watchdog) -- they must read the SystemModule at
  // the same points as the sequential loop.
  const linalg::MatrixF a = small_matrix(17);
  accel::HeteroSvdConfig cfg = small_config();
  cfg.precision = 1e-6;
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator sequential(cfg);
  const accel::RunResult off = sequential.run({a});
  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator pipelined(cfg);
  const accel::RunResult on = pipelined.run({a});
  expect_run_bits_equal(off, on);
  EXPECT_EQ(off.tasks[0].converged, on.tasks[0].converged);
}

TEST(Pipeline, EnvOverrideTurnsAutoOn) {
  // kAuto stays sequential on single-core hosts; HSVD_PIPELINE=on must
  // force the pipeline regardless -- and stay bit-identical.
  const linalg::MatrixF a = small_matrix(5);
  accel::HeteroSvdConfig cfg = small_config();
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator sequential(cfg);
  const accel::RunResult off = sequential.run({a});
  ASSERT_EQ(setenv("HSVD_PIPELINE", "on", 1), 0);
  cfg.pipeline = accel::PipelineMode::kAuto;
  accel::HeteroSvdAccelerator pipelined(cfg);
  const accel::RunResult on = pipelined.run({a});
  ASSERT_EQ(unsetenv("HSVD_PIPELINE"), 0);
  expect_run_bits_equal(off, on);
}

TEST(Pipeline, CancellationDrainsAndLeavesFabricClean) {
  // Drive the pipeline entry point directly with an already-cancelled
  // token: the stage-boundary poll must abort the chain, join every
  // stage thread (no deadlock), purge the task's tile buffers, and
  // surface DeadlineExceeded -- after which the same accelerator must
  // produce a bit-identical clean run.
  const linalg::MatrixF a = small_matrix(9);
  accel::HeteroSvdConfig cfg = small_config();
  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator acc(cfg);
  common::CancelToken token;
  token.cancel();
  acc.attach_cancellation(&token);
  acc.reset_timelines();
  EXPECT_THROW(accel::TaskPipeline::run(acc, 0, 0.0, a, 0),
               DeadlineExceeded);
  acc.attach_cancellation(nullptr);
  const accel::RunResult after = acc.run({a});
  accel::HeteroSvdAccelerator fresh(cfg);
  const accel::RunResult clean = fresh.run({a});
  expect_run_bits_equal(clean, after);
}

TEST(Pipeline, FaultTeardownRecoversWithoutDeadlock) {
  // A hung tile fires inside the load stage mid-sweep with items in
  // flight downstream: the chain must tear down cleanly, the batch
  // engine must purge + mask + re-place, and the recovered factors must
  // match the fault-free sequential run bit for bit.
  const linalg::MatrixF a = small_matrix(13);
  accel::HeteroSvdConfig cfg = small_config();
  cfg.fault_retries = 2;
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator clean(cfg);
  const accel::RunResult baseline = clean.run({a});

  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator probe(cfg);
  const versal::TileCoord bad = probe.placement().tasks[0].orth.front()[1];
  versal::FaultPlan plan;
  plan.faults.push_back({versal::FaultKind::kTileHang, bad, 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  accel::HeteroSvdAccelerator faulted(cfg);
  faulted.attach_faults(&injector);
  const accel::RunResult recovered = faulted.run({a});
  ASSERT_EQ(recovered.failed_tasks, 0);
  EXPECT_GE(recovered.tasks[0].recovery_attempts, 1);
  EXPECT_EQ(std::memcmp(baseline.tasks[0].u.data().data(),
                        recovered.tasks[0].u.data().data(),
                        baseline.tasks[0].u.data().size_bytes()),
            0);
  EXPECT_EQ(std::memcmp(baseline.tasks[0].sigma.data(),
                        recovered.tasks[0].sigma.data(),
                        baseline.tasks[0].sigma.size() * sizeof(float)),
            0);
}

TEST(Pipeline, MathFaultSurfacesIdenticallyToSequential) {
  // A non-finite input trips the orthogonalize stage's detection point
  // (an Inf element keeps the Gram diagonal nonnegative but makes the
  // first touching kernel's coherence |Inf|/Inf = NaN); the surfaced
  // diagnostic (message and blamed tile) must match the sequential
  // path's, because the error collector orders errors by item sequence,
  // not by wall-clock detection order.
  linalg::MatrixF a = small_matrix(21);
  a(3, 2) = std::numeric_limits<float>::infinity();
  accel::HeteroSvdConfig cfg = small_config();
  cfg.fault_retries = 0;  // the fault is in the data; retries cannot help
  cfg.pipeline = accel::PipelineMode::kOff;
  accel::HeteroSvdAccelerator sequential(cfg);
  const accel::RunResult off = sequential.run({a});
  cfg.pipeline = accel::PipelineMode::kOn;
  accel::HeteroSvdAccelerator pipelined(cfg);
  const accel::RunResult on = pipelined.run({a});
  ASSERT_EQ(off.tasks[0].status, SvdStatus::kFailed);
  ASSERT_EQ(on.tasks[0].status, SvdStatus::kFailed);
  EXPECT_EQ(off.tasks[0].message, on.tasks[0].message);
  ASSERT_TRUE(off.tasks[0].fault_tile.has_value());
  ASSERT_TRUE(on.tasks[0].fault_tile.has_value());
  EXPECT_EQ(off.tasks[0].fault_tile->row, on.tasks[0].fault_tile->row);
  EXPECT_EQ(off.tasks[0].fault_tile->col, on.tasks[0].fault_tile->col);
}

}  // namespace
}  // namespace hsvd
