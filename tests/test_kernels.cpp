// Tests for the functional AIE kernels and the kernel timing model.
#include <gtest/gtest.h>

#include "accel/kernels.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"
#include "perfmodel/aie_timing.hpp"

namespace hsvd::accel {
namespace {

TEST(OrthKernel, OrthogonalizesPair) {
  Rng rng(42);
  auto a = linalg::random_gaussian(64, 2, rng).cast<float>();
  auto r = orth_kernel(a.col(0), a.col(1));
  EXPECT_TRUE(r.rotated);
  EXPECT_GT(r.coherence, 0.0);
  EXPECT_NEAR(linalg::dot<float>(a.col(0), a.col(1)), 0.0f, 1e-4f);
}

TEST(OrthKernel, IdentityOnOrthogonalPair) {
  linalg::MatrixF a(4, 2);
  a(0, 0) = 1.0f;
  a(1, 1) = 1.0f;
  auto r = orth_kernel(a.col(0), a.col(1));
  EXPECT_FALSE(r.rotated);
  EXPECT_EQ(r.coherence, 0.0);
}

TEST(OrthKernel, ZeroColumnIsFixedPoint) {
  linalg::MatrixF a(4, 2);
  a(0, 0) = 3.0f;
  auto r = orth_kernel(a.col(0), a.col(1));
  EXPECT_FALSE(r.rotated);
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
}

TEST(NormKernel, NormalizesColumn) {
  linalg::MatrixF a(2, 1);
  a(0, 0) = 3.0f;
  a(1, 0) = 4.0f;
  auto r = norm_kernel(a.col(0));
  EXPECT_FLOAT_EQ(r.sigma, 5.0f);
  EXPECT_FLOAT_EQ(a(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(a(1, 0), 0.8f);
}

TEST(NormKernel, ZeroColumnStaysZero) {
  linalg::MatrixF a(3, 1);
  auto r = norm_kernel(a.col(0));
  EXPECT_FLOAT_EQ(r.sigma, 0.0f);
  EXPECT_FLOAT_EQ(a(2, 0), 0.0f);
}

TEST(KernelTiming, ScalesLinearlyWithColumnLength) {
  perf::AieKernelModel model;
  const double t128 = model.orth_seconds(128);
  const double t256 = model.orth_seconds(256);
  const double t512 = model.orth_seconds(512);
  // Affine in m: equal second differences.
  EXPECT_NEAR(t512 - t256, 2 * (t256 - t128), 1e-15);
  EXPECT_GT(t128, model.orth_overhead_cycles / model.clock_hz);
}

TEST(KernelTiming, NormIsCheaperThanOrth) {
  perf::AieKernelModel model;
  for (std::size_t m : {64u, 128u, 1024u}) {
    EXPECT_LT(model.norm_seconds(m), model.orth_seconds(m));
  }
}

TEST(PlioTiming, BandwidthCapsApply) {
  perf::PlioModel plio;
  versal::DeviceResources dev = versal::vck190();
  // At modest PL frequency the PL side is the bottleneck: 16 B/cycle.
  const double t = plio.tx_seconds(16.0 * 208.3e6, 208.3e6, dev);
  EXPECT_NEAR(t, 1.0, 1e-9);
  // At absurd PL frequency the physical 32 GB/s cap binds.
  const double capped = plio.tx_seconds(32e9, 10e9, dev);
  EXPECT_NEAR(capped, 1.0, 1e-9);
  // The AIE->PL direction has the lower 24 GB/s cap.
  EXPECT_GT(plio.rx_seconds(32e9, 10e9, dev), capped);
}

}  // namespace
}  // namespace hsvd::accel
