// Unit tests for src/common: formatting, RNG determinism, tables, CSV,
// statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hsvd {
namespace {

TEST(Format, CatConcatenatesStreamables) {
  EXPECT_EQ(cat("n=", 42, ", x=", 1.5), "n=42, x=1.5");
  EXPECT_EQ(cat(), "");
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.14159, 0), "3");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

TEST(Format, Scientific) { EXPECT_EQ(sci(0.00123, 2), "1.23e-03"); }

TEST(Format, PercentAndTimes) {
  EXPECT_EQ(pct(0.3141, 1), "31.4%");
  EXPECT_EQ(times(1.98), "1.98x");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(5);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
}

TEST(Units, CycleConversionRoundTrips) {
  const double s = cycles_to_seconds(1250.0, 1.25 * kGHz);
  EXPECT_DOUBLE_EQ(s, 1e-6);
  EXPECT_DOUBLE_EQ(seconds_to_cycles(s, 1.25 * kGHz), 1250.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(KiB(8), 8192u);
  EXPECT_EQ(MiB(1), 1048576u);
}

TEST(Table, RendersAlignedColumnsWithRule) {
  Table t({"size", "latency"});
  t.add_row({"128", "0.0011"});
  t.add_row({"1024", "0.3415"});
  const std::string s = t.render();
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("0.3415"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"has,comma", "quote\"inside"});
  const std::string s = w.render();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, RejectsMismatchedRow) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Stats, MeanMaxGeomean) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(geomean({}), std::invalid_argument);
}

}  // namespace
}  // namespace hsvd
