# Golden-file regression driver: run one bench executable in its own
# scratch directory and require its CSV artifact to be byte-for-byte
# identical to the committed golden. Invoked by ctest as
#
#   cmake -DBENCH=<path-to-exe> -DCSV=<name>.csv -DGOLDEN=<path> \
#         -DWORKDIR=<scratch> -P run_golden.cmake
#
# A drifted artifact fails with a unified diff so the change is visible
# in the ctest log; intentional model changes re-bless the golden by
# copying the new CSV over tests/golden/<name>.csv.
foreach(var BENCH CSV GOLDEN WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(
  COMMAND "${BENCH}"
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${bench_rc}")
endif()

set(produced "${WORKDIR}/${CSV}")
if(NOT EXISTS "${produced}")
  message(FATAL_ERROR "${BENCH} did not write ${CSV}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${produced}" "${GOLDEN}"
  RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
  execute_process(COMMAND diff -u "${GOLDEN}" "${produced}"
                  OUTPUT_VARIABLE delta ERROR_VARIABLE delta)
  message(FATAL_ERROR
      "${CSV} drifted from the golden ${GOLDEN}:\n${delta}\n"
      "If the change is intentional, re-bless with: cp ${produced} ${GOLDEN}")
endif()
message(STATUS "${CSV} matches golden byte-for-byte")
