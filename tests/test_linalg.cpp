// Unit tests for src/linalg: matrix container, ops, generators, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/matrix.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"

namespace hsvd::linalg {
namespace {

TEST(Matrix, ColumnMajorLayout) {
  MatrixF m(3, 2);
  m(0, 0) = 1;
  m(2, 0) = 3;
  m(0, 1) = 4;
  auto c0 = m.col(0);
  auto c1 = m.col(1);
  EXPECT_FLOAT_EQ(c0[0], 1);
  EXPECT_FLOAT_EQ(c0[2], 3);
  EXPECT_FLOAT_EQ(c1[0], 4);
  EXPECT_EQ(m.data().size(), 6u);
}

TEST(Matrix, IdentityAndEquality) {
  auto i3 = MatrixD::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  EXPECT_EQ(i3, MatrixD::identity(3));
  EXPECT_FALSE(i3 == MatrixD::identity(4));
}

TEST(Matrix, SliceAndAssignColsRoundTrip) {
  MatrixF m(2, 4);
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t r = 0; r < 2; ++r) m(r, c) = static_cast<float>(10 * c + r);
  MatrixF mid = m.slice_cols(1, 2);
  EXPECT_FLOAT_EQ(mid(1, 0), 11.0f);
  EXPECT_FLOAT_EQ(mid(0, 1), 20.0f);
  MatrixF m2(2, 4);
  m2.assign_cols(1, mid);
  EXPECT_FLOAT_EQ(m2(1, 1), 11.0f);
  EXPECT_FLOAT_EQ(m2(0, 2), 20.0f);
  EXPECT_FLOAT_EQ(m2(0, 0), 0.0f);
}

TEST(Matrix, SliceOutOfRangeThrows) {
  MatrixF m(2, 3);
  EXPECT_THROW(m.slice_cols(2, 2), std::invalid_argument);
}

TEST(Matrix, CastPreservesValues) {
  MatrixD d(2, 2);
  d(0, 0) = 1.5;
  d(1, 1) = -2.25;
  MatrixF f = d.cast<float>();
  EXPECT_FLOAT_EQ(f(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(f(1, 1), -2.25f);
}

TEST(Ops, DotAndNorm) {
  MatrixD m(3, 2);
  m(0, 0) = 3;
  m(1, 0) = 4;
  m(0, 1) = 1;
  EXPECT_DOUBLE_EQ(dot<double>(m.col(0), m.col(1)), 3.0);
  EXPECT_DOUBLE_EQ(norm2<double>(m.col(0)), 5.0);
}

TEST(Ops, MatmulAgainstHandComputed) {
  MatrixD a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  MatrixD c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(1);
  MatrixD a = random_gaussian(4, 3, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Ops, RotationPreservesFrobeniusNorm) {
  Rng rng(2);
  MatrixD a = random_gaussian(16, 2, rng);
  const double before = frobenius_norm(a);
  const double theta = 0.7;
  apply_rotation<double>(a.col(0), a.col(1), std::cos(theta), std::sin(theta));
  EXPECT_NEAR(frobenius_norm(a), before, 1e-12);
}

TEST(Generators, GaussianHasExpectedShapeAndSpread) {
  Rng rng(3);
  MatrixD g = random_gaussian(50, 40, rng);
  EXPECT_EQ(g.rows(), 50u);
  EXPECT_EQ(g.cols(), 40u);
  double s2 = 0;
  for (double v : g.data()) s2 += v * v;
  EXPECT_NEAR(s2 / (50.0 * 40.0), 1.0, 0.1);
}

TEST(Generators, OrthogonalMatrixIsOrthogonal) {
  Rng rng(4);
  MatrixD q = random_orthogonal(12, rng);
  EXPECT_LT(orthogonality_error(q), 1e-10);
}

TEST(Generators, SpectrumMatrixHasRequestedSingularValues) {
  Rng rng(5);
  const std::vector<double> sigma = {5.0, 2.0, 1.0, 0.5};
  MatrixD a = matrix_with_spectrum(8, 6, sigma, rng);
  // Singular values of A equal sigma (padded with zeros): check via the
  // Gram matrix trace and Frobenius norm identities.
  double fro2 = 0;
  for (double v : a.data()) fro2 += v * v;
  double expect = 0;
  for (double s : sigma) expect += s * s;
  EXPECT_NEAR(fro2, expect, 1e-9);
}

TEST(Generators, GeometricSpectrumEndpointsAndMonotone) {
  auto s = geometric_spectrum(5, 100.0);
  EXPECT_DOUBLE_EQ(s.front(), 1.0);
  EXPECT_NEAR(s.back(), 0.01, 1e-12);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i], s[i - 1]);
}

TEST(Generators, GeometricSpectrumSingleton) {
  auto s = geometric_spectrum(1, 10.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
}

TEST(Metrics, OrthogonalityErrorZeroForIdentity) {
  EXPECT_NEAR(orthogonality_error(MatrixD::identity(6)), 0.0, 1e-15);
}

TEST(Metrics, OrthogonalityErrorDetectsScaling) {
  MatrixD m = MatrixD::identity(3);
  m(0, 0) = 2.0;  // column norm 2 -> Gram(0,0) = 4, error 3
  EXPECT_NEAR(orthogonality_error(m), 3.0, 1e-12);
}

TEST(Metrics, ReconstructionErrorZeroForExactFactors) {
  Rng rng(6);
  const std::vector<double> sigma = {3.0, 1.0};
  MatrixD u = random_orthogonal(4, rng);
  MatrixD v = random_orthogonal(4, rng);
  MatrixD a(4, 4);
  for (std::size_t t = 0; t < sigma.size(); ++t)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t i = 0; i < 4; ++i) a(i, j) += u(i, t) * sigma[t] * v(j, t);
  EXPECT_LT(reconstruction_error(a, u, sigma, v), 1e-12);
}

TEST(Metrics, SpectrumDistancePadsWithZeros) {
  EXPECT_NEAR(spectrum_distance({1.0, 0.5}, {1.0}), 0.5 / 0.5, 1e-12);
  EXPECT_NEAR(spectrum_distance({2.0}, {2.0}), 0.0, 1e-15);
}

TEST(Metrics, MaxPairCoherenceBounds) {
  Rng rng(7);
  MatrixD q = random_orthogonal(8, rng);
  EXPECT_LT(max_pair_coherence(q), 1e-10);
  MatrixD dup(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    dup(i, 0) = static_cast<double>(i + 1);
    dup(i, 1) = static_cast<double>(i + 1);
  }
  EXPECT_NEAR(max_pair_coherence(dup), 1.0, 1e-12);
}

}  // namespace
}  // namespace hsvd::linalg
