// Tests for block Hestenes-Jacobi (Algorithm 1 host model) and block-pair
// round-robin enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "jacobi/block.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::jacobi {
namespace {

using hsvd::Rng;
using hsvd::linalg::geometric_spectrum;
using hsvd::linalg::matrix_with_spectrum;
using hsvd::linalg::MatrixD;
using hsvd::linalg::MatrixF;
using hsvd::linalg::orthogonality_error;
using hsvd::linalg::reconstruction_error;
using hsvd::linalg::spectrum_distance;

TEST(BlockPairs, CoversAllPairsExactlyOnce) {
  for (int p : {2, 3, 4, 5, 8, 13}) {
    auto rounds = block_pair_rounds(p);
    std::set<std::pair<int, int>> seen;
    for (const auto& round : rounds) {
      std::set<int> used;
      for (const auto& [u, v] : round) {
        EXPECT_LT(u, v);
        EXPECT_LT(v, p);
        EXPECT_TRUE(used.insert(u).second);
        EXPECT_TRUE(used.insert(v).second);
        EXPECT_TRUE(seen.insert({u, v}).second);
      }
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(p) * static_cast<std::size_t>(p - 1) / 2)
        << "p=" << p;
  }
}

TEST(BlockPairs, RoundCountMatchesTournament) {
  EXPECT_EQ(block_pair_rounds(4).size(), 3u);
  EXPECT_EQ(block_pair_rounds(5).size(), 5u);  // odd: bye inflates rounds
  EXPECT_THROW(block_pair_rounds(1), std::invalid_argument);
}

TEST(BlockSvd, SingleBlockDegeneratesToHestenes) {
  Rng rng(50);
  MatrixF a = hsvd::linalg::random_gaussian(16, 8, rng).cast<float>();
  BlockOptions opts;
  opts.block_cols = 8;  // p = 1
  HestenesResult r = block_hestenes_svd(a, opts);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, ref.sigma), 1e-4);
}

TEST(BlockSvd, MultiBlockMatchesReference) {
  Rng rng(51);
  MatrixF a = hsvd::linalg::random_gaussian(24, 16, rng).cast<float>();
  BlockOptions opts;
  opts.block_cols = 4;  // p = 4 blocks
  HestenesResult r = block_hestenes_svd(a, opts);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, ref.sigma), 1e-4);
  EXPECT_LT(reconstruction_error(a.cast<double>(), r.u.cast<double>(), sigma,
                                 r.v.cast<double>()),
            1e-5);
  EXPECT_TRUE(r.converged);
}

TEST(BlockSvd, OddBlockCountWorks) {
  Rng rng(52);
  MatrixF a = hsvd::linalg::random_gaussian(20, 12, rng).cast<float>();
  BlockOptions opts;
  opts.block_cols = 4;  // p = 3 (odd -> bye path)
  HestenesResult r = block_hestenes_svd(a, opts);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, ref.sigma), 1e-4);
}

TEST(BlockSvd, FixedSweepsHonored) {
  Rng rng(53);
  MatrixF a = hsvd::linalg::random_gaussian(16, 8, rng).cast<float>();
  BlockOptions opts;
  opts.block_cols = 4;
  opts.fixed_sweeps = 6;
  HestenesResult r = block_hestenes_svd(a, opts);
  EXPECT_EQ(r.sweeps, 6);
}

TEST(BlockSvd, RejectsIndivisibleBlockWidth) {
  MatrixF a(8, 6);
  BlockOptions opts;
  opts.block_cols = 4;  // 6 % 4 != 0
  EXPECT_THROW(block_hestenes_svd(a, opts), std::invalid_argument);
}

TEST(BlockSvd, KnownSpectrumRecovered) {
  Rng rng(54);
  const auto spectrum = geometric_spectrum(12, 100.0);
  MatrixD ad = matrix_with_spectrum(18, 12, spectrum, rng);
  BlockOptions opts;
  opts.block_cols = 6;
  HestenesResult r = block_hestenes_svd(ad.cast<float>(), opts);
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, spectrum), 5e-4);
}

struct BlockCase {
  std::size_t rows;
  std::size_t cols;
  int block_cols;
  OrderingKind kind;
};

class BlockSweep : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockSweep, ConvergesToReference) {
  const auto& p = GetParam();
  Rng rng(700 + p.rows * 3 + p.cols + static_cast<std::uint64_t>(p.block_cols));
  MatrixF a = hsvd::linalg::random_gaussian(p.rows, p.cols, rng).cast<float>();
  BlockOptions opts;
  opts.block_cols = p.block_cols;
  opts.ordering = p.kind;
  HestenesResult r = block_hestenes_svd(a, opts);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(spectrum_distance(sigma, ref.sigma), 2e-4);
  EXPECT_LT(orthogonality_error(r.u.cast<double>()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBlockWidths, BlockSweep,
    ::testing::Values(BlockCase{16, 8, 2, OrderingKind::kShiftingRing},
                      BlockCase{16, 8, 4, OrderingKind::kShiftingRing},
                      BlockCase{24, 16, 4, OrderingKind::kRing},
                      BlockCase{24, 16, 8, OrderingKind::kShiftingRing},
                      BlockCase{32, 24, 6, OrderingKind::kRoundRobin},
                      BlockCase{40, 32, 8, OrderingKind::kShiftingRing},
                      BlockCase{20, 10, 5, OrderingKind::kShiftingRing}),
    [](const auto& info) {
      std::string name = std::to_string(info.param.rows) + "x" +
                         std::to_string(info.param.cols) + "_k" +
                         std::to_string(info.param.block_cols) + "_" +
                         to_string(info.param.kind);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hsvd::jacobi
