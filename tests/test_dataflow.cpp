// Tests for the dataflow builder -- including the paper's headline DMA
// closed forms (Fig. 3 / Fig. 4): ring + naive memory = 2k(k-1) DMAs per
// sweep, shifting ring + relocated output = 2(k-1).
#include <gtest/gtest.h>

#include "accel/dataflow.hpp"
#include "accel/placement.hpp"

namespace hsvd::accel {
namespace {

using jacobi::OrderingKind;

TEST(Dataflow, EveryColumnMovesEveryTransition) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 64;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  auto placement = place(cfg);
  const auto& task = placement.tasks[0];
  const int parity = task.orth[0][0].row % 2;
  auto schedule = jacobi::make_schedule(cfg.ordering, cfg.pair_width(), parity);
  const versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  auto plan = build_dataflow(schedule, task, geo, MemoryStrategy::kRelocated);
  ASSERT_EQ(plan.transitions.size(), schedule.size() - 1);
  for (const auto& tr : plan.transitions) {
    EXPECT_EQ(tr.moves.size(), static_cast<std::size_t>(cfg.pair_width()));
  }
}

TEST(Dataflow, MismatchedLayerCountRejected) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 64;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  auto placement = place(cfg);
  auto schedule = jacobi::make_schedule(OrderingKind::kRing, 4);  // too short
  const versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  EXPECT_THROW(build_dataflow(schedule, placement.tasks[0], geo,
                              MemoryStrategy::kRelocated),
               std::invalid_argument);
}

// The co-design's central claim (Fig. 3): the joint ordering + dataflow
// optimization reduces per-sweep DMA from 2k(k-1) to 2(k-1).
TEST(Dataflow, PaperClosedFormsHold) {
  for (int k = 2; k <= 11; ++k) {
    EXPECT_EQ(count_sweep_dma(OrderingKind::kRing, k, MemoryStrategy::kNaive),
              2 * k * (k - 1))
        << "ring+naive k=" << k;
    EXPECT_EQ(count_sweep_dma(OrderingKind::kShiftingRing, k,
                              MemoryStrategy::kRelocated),
              2 * (k - 1))
        << "shifting+relocated k=" << k;
  }
}

// Ablation: each co-design element alone is insufficient.
TEST(Dataflow, AblationNeedsBothElements) {
  for (int k = 3; k <= 8; ++k) {
    const int full = count_sweep_dma(OrderingKind::kShiftingRing, k,
                                     MemoryStrategy::kRelocated);
    const int ordering_only = count_sweep_dma(OrderingKind::kShiftingRing, k,
                                              MemoryStrategy::kNaive);
    const int dataflow_only =
        count_sweep_dma(OrderingKind::kRing, k, MemoryStrategy::kRelocated);
    EXPECT_EQ(ordering_only, 2 * k * (k - 1));  // shifting alone: no gain
    EXPECT_EQ(dataflow_only, k * k - 1);        // relocation alone: ~half
    EXPECT_LT(full, dataflow_only);
    EXPECT_LT(full, ordering_only);
  }
}

TEST(Dataflow, RoundRobinOrderingIsQuadratic) {
  for (int k = 3; k <= 8; ++k) {
    EXPECT_EQ(count_sweep_dma(OrderingKind::kRoundRobin, k,
                              MemoryStrategy::kRelocated),
              2 * (k - 1) * (k - 1));
  }
}

TEST(Dataflow, BandCrossingsForceDma) {
  // P_eng = 8 -> 15 layers over 3 bands: the transitions that cross a
  // band boundary move all 2k columns by DMA.
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 128;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  auto placement = place(cfg);
  const auto& task = placement.tasks[0];
  auto schedule = jacobi::make_schedule(cfg.ordering, cfg.pair_width(),
                                        task.orth[0][0].row % 2);
  const versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  auto plan = build_dataflow(schedule, task, geo, MemoryStrategy::kRelocated);
  // Layers 5->6 and 11->12 cross bands.
  EXPECT_EQ(plan.transitions[5].dma_count(), 16);
  EXPECT_EQ(plan.transitions[11].dma_count(), 16);
  // All other transitions have the single shifting-ring wrap DMA.
  for (std::size_t l = 0; l < plan.transitions.size(); ++l) {
    if (l == 5 || l == 11) continue;
    EXPECT_EQ(plan.transitions[l].dma_count(), 1) << "layer " << l;
  }
}

TEST(Dataflow, ShadowBytesScaleWithColumnLength) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 64;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  auto placement = place(cfg);
  const auto& task = placement.tasks[0];
  auto schedule = jacobi::make_schedule(cfg.ordering, cfg.pair_width(),
                                        task.orth[0][0].row % 2);
  const versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  auto plan = build_dataflow(schedule, task, geo, MemoryStrategy::kRelocated);
  EXPECT_EQ(plan.dma_shadow_bytes(64),
            static_cast<std::uint64_t>(plan.total_dma()) * 64 * 4);
  EXPECT_EQ(plan.total_dma() + plan.total_neighbour(),
            static_cast<int>(plan.transitions.size()) * cfg.pair_width());
}

// Property sweep over P_eng: DMA reduction factor grows linearly with k,
// i.e. the co-design's advantage widens with engine parallelism.
class DmaReduction : public ::testing::TestWithParam<int> {};

TEST_P(DmaReduction, ReductionFactorIsK) {
  const int k = GetParam();
  const int naive = count_sweep_dma(OrderingKind::kRing, k, MemoryStrategy::kNaive);
  const int codesigned = count_sweep_dma(OrderingKind::kShiftingRing, k,
                                         MemoryStrategy::kRelocated);
  EXPECT_EQ(naive / codesigned, k);
  EXPECT_EQ(naive % codesigned, 0);
}

INSTANTIATE_TEST_SUITE_P(EngineParallelism, DmaReduction,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11));

}  // namespace
}  // namespace hsvd::accel
