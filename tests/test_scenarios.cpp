// Unit tests for the workload-scenario layer (DESIGN.md section 16):
// selection and option validation, the off-switch's bit-identity
// contract, tall-skinny QR pre-reduction, truncated/randomized top-k,
// rank-1 update/downdate and the streaming wrapper, scenario-aware
// result-cache identity (forced-collision), serve-layer integration,
// scenario observability counters, and the LSTM compression demo.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "case_matrix.hpp"
#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"
#include "obs/obs.hpp"
#include "scenarios/compression.hpp"
#include "scenarios/scenarios.hpp"
#include "scenarios/update.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "verify/verifier.hpp"

namespace hsvd {
namespace {

using scenarios::Scenario;

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

linalg::MatrixF tall_case(std::size_t cols, std::size_t ratio,
                          std::uint64_t seed = 11) {
  testing::CaseSpec spec;
  spec.cols = cols;
  spec.ratio = ratio;
  spec.condition = 1e3;
  spec.seed = seed;
  return testing::generate_case(spec).cast<float>();
}

double reconstruction(const linalg::MatrixF& a, const Svd& r) {
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  return linalg::reconstruction_error(a.cast<double>(), r.u.cast<double>(),
                                      sigma, r.v.cast<double>());
}

// ---- parsing and selection ------------------------------------------------

TEST(Scenario, ParseRoundTrip) {
  EXPECT_EQ(scenarios::parse_scenario("auto"), Scenario::kAuto);
  EXPECT_EQ(scenarios::parse_scenario("off"), Scenario::kOff);
  EXPECT_EQ(scenarios::parse_scenario("tall-skinny"), Scenario::kTallSkinny);
  EXPECT_EQ(scenarios::parse_scenario("truncated"), Scenario::kTruncated);
  for (Scenario s : {Scenario::kAuto, Scenario::kOff, Scenario::kTallSkinny,
                     Scenario::kTruncated}) {
    EXPECT_EQ(scenarios::parse_scenario(scenarios::to_string(s)), s);
  }
  EXPECT_THROW(scenarios::parse_scenario("qr"), InputError);
  EXPECT_THROW(scenarios::parse_scenario(""), InputError);
}

TEST(Scenario, SelectionRules) {
  SvdOptions opts;
  // kAuto engages tall-skinny at the ratio threshold, not below it.
  EXPECT_EQ(scenarios::select_scenario(128, 16, opts), Scenario::kTallSkinny);
  EXPECT_EQ(scenarios::select_scenario(127, 16, opts), Scenario::kOff);
  opts.scenario_opts.tall_skinny_ratio = 4.0;
  EXPECT_EQ(scenarios::select_scenario(64, 16, opts), Scenario::kTallSkinny);
  opts = SvdOptions{};
  // Forced front-ends engage regardless of shape.
  opts.scenario = Scenario::kTallSkinny;
  EXPECT_EQ(scenarios::select_scenario(16, 16, opts), Scenario::kTallSkinny);
  // top_k selects the truncated front-end under kAuto.
  opts = SvdOptions{};
  opts.top_k = 4;
  EXPECT_EQ(scenarios::select_scenario(32, 16, opts), Scenario::kTruncated);
  // Invalid combinations are typed input errors.
  opts.scenario = Scenario::kOff;
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
  opts.scenario = Scenario::kTallSkinny;
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
  opts = SvdOptions{};
  opts.top_k = 17;
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
  opts = SvdOptions{};
  opts.scenario = Scenario::kTruncated;
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
  // Modeled comparators cannot carry an engaged front-end; "auto" can.
  opts = SvdOptions{};
  opts.top_k = 4;
  opts.backend = "fpga-bcv";
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
  opts.backend = "auto";
  EXPECT_EQ(scenarios::select_scenario(32, 16, opts), Scenario::kTruncated);
  EXPECT_FALSE(
      scenarios::scenario_allows_backend(Scenario::kTruncated, "gpu-wcycle"));
  EXPECT_TRUE(scenarios::scenario_allows_backend(Scenario::kOff, "gpu-wcycle"));
  // Bad knobs are rejected through validate().
  opts = SvdOptions{};
  opts.scenario_opts.tall_skinny_ratio = 0.5;
  EXPECT_THROW(scenarios::select_scenario(32, 16, opts), InputError);
}

// ---- off-switch bit-identity ----------------------------------------------

// The contract that keeps this PR invisible to every existing caller:
// scenario off -- and auto below the engagement threshold -- produces
// bits identical to the dense path, scenario provenance unset.
TEST(Scenario, OffAndDormantAutoAreBitIdenticalToDense) {
  Rng rng(5);
  const linalg::MatrixF a =
      linalg::random_gaussian(40, 16, rng).cast<float>();
  SvdOptions dense;
  dense.threads = 1;
  const Svd base = svd(a, dense);
  EXPECT_TRUE(base.scenario.empty());
  EXPECT_EQ(base.scenario_top_k, 0u);

  SvdOptions off = dense;
  off.scenario = Scenario::kOff;
  const Svd r_off = svd(a, off);
  EXPECT_TRUE(same_bits(base.u, r_off.u));
  EXPECT_TRUE(same_bits(base.sigma, r_off.sigma));
  EXPECT_TRUE(same_bits(base.v, r_off.v));
  EXPECT_TRUE(r_off.scenario.empty());

  // Even on a very tall matrix, kOff pins the dense path.
  const linalg::MatrixF tall = tall_case(8, 32);
  SvdOptions tall_off;
  tall_off.threads = 1;
  tall_off.scenario = Scenario::kOff;
  const Svd r_tall = svd(tall, tall_off);
  EXPECT_TRUE(r_tall.scenario.empty());
}

TEST(Scenario, AutoEngagesTallSkinnyAtRatioThreshold) {
  const linalg::MatrixF tall = tall_case(8, 32);
  SvdOptions opts;
  opts.threads = 1;
  const Svd r = svd(tall, opts);
  EXPECT_EQ(r.scenario, "tall-skinny");
  EXPECT_GT(r.scenario_bound, 0.0);
}

// ---- tall-skinny front-end -------------------------------------------------

TEST(Scenario, TallSkinnyMatchesReference) {
  for (std::size_t ratio : {std::size_t{4}, std::size_t{32}}) {
    const linalg::MatrixF a = tall_case(16, ratio);
    const auto ref = linalg::reference_svd(a.cast<double>());
    SvdOptions opts;
    opts.threads = 1;
    opts.scenario = Scenario::kTallSkinny;
    const Svd r = svd(a, opts);
    SCOPED_TRACE(ratio);
    EXPECT_EQ(r.scenario, "tall-skinny");
    ASSERT_EQ(r.sigma.size(), a.cols());
    for (std::size_t i = 0; i < a.cols(); ++i) {
      EXPECT_NEAR(r.sigma[i], ref.sigma[i], 5e-5 * ref.sigma[0]);
    }
    EXPECT_LT(linalg::orthogonality_error(r.u.cast<double>()), 1e-3);
    EXPECT_LT(reconstruction(a, r), 1e-4);
  }
}

TEST(Scenario, TallSkinnyRespectsWantV) {
  const linalg::MatrixF a = tall_case(8, 16);
  SvdOptions opts;
  opts.threads = 1;
  opts.scenario = Scenario::kTallSkinny;
  opts.want_v = false;
  const Svd r = svd(a, opts);
  EXPECT_TRUE(r.v.empty());
  EXPECT_EQ(r.sigma.size(), a.cols());
}

// A wide input composes: the facade transposes first, then the (now
// tall) problem can engage the front-end, and the factor swap returns
// factors for the original orientation.
TEST(Scenario, WideInputComposesWithTranspose) {
  const linalg::MatrixF tall = tall_case(8, 32);
  const linalg::MatrixF wide = linalg::transpose(tall);
  SvdOptions opts;
  opts.threads = 1;
  const Svd r = svd(wide, opts);
  EXPECT_EQ(r.scenario, "tall-skinny");
  ASSERT_EQ(r.u.rows(), wide.rows());
  ASSERT_EQ(r.v.rows(), wide.cols());
  EXPECT_LT(reconstruction(wide, r), 1e-4);
}

// ---- truncated front-end ---------------------------------------------------

TEST(Scenario, TruncatedTopKWithinBoundOfReference) {
  testing::CaseSpec spec;
  spec.cols = 16;
  spec.ratio = 4;
  spec.condition = 1e4;
  spec.decay = testing::Decay::kGeometric;
  spec.seed = 23;
  const linalg::MatrixF a = testing::generate_case(spec).cast<float>();
  const auto ref = linalg::reference_svd(a.cast<double>());

  SvdOptions opts;
  opts.threads = 1;
  opts.top_k = 4;
  const Svd r = svd(a, opts);
  EXPECT_EQ(r.scenario, "truncated");
  EXPECT_EQ(r.scenario_top_k, 4u);
  ASSERT_EQ(r.sigma.size(), 4u);
  ASSERT_EQ(r.u.cols(), 4u);
  ASSERT_EQ(r.v.cols(), 4u);
  // The leading singular values match the reference's leading block.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.sigma[i], ref.sigma[i], 1e-3 * ref.sigma[0]);
  }
  // The recorded a-posteriori bound covers the measured rank-k error.
  ASSERT_GT(r.scenario_bound, 0.0);
  EXPECT_LE(reconstruction(a, r), r.scenario_bound);
  // ... and the bound is meaningful: it also covers the *optimal*
  // rank-k error, and is not vacuously large for a decaying spectrum.
  double tail2 = 0.0;
  double total2 = 0.0;
  for (std::size_t i = 0; i < ref.sigma.size(); ++i) {
    total2 += ref.sigma[i] * ref.sigma[i];
    if (i >= 4) tail2 += ref.sigma[i] * ref.sigma[i];
  }
  EXPECT_GE(r.scenario_bound, std::sqrt(tail2 / total2));
  EXPECT_LT(r.scenario_bound, 0.5);
}

TEST(Scenario, TruncatedIsDeterministicAcrossCalls) {
  const linalg::MatrixF a = tall_case(12, 4, 31);
  SvdOptions opts;
  opts.threads = 1;
  opts.top_k = 3;
  const Svd r1 = svd(a, opts);
  const Svd r2 = svd(a, opts);
  EXPECT_TRUE(same_bits(r1.u, r2.u));
  EXPECT_TRUE(same_bits(r1.sigma, r2.sigma));
  EXPECT_TRUE(same_bits(r1.v, r2.v));
  // A different sketch seed draws a different subspace (bits differ,
  // accuracy holds).
  SvdOptions reseeded = opts;
  reseeded.scenario_opts.sketch_seed = 999;
  const Svd r3 = svd(a, reseeded);
  EXPECT_FALSE(same_bits(r1.u, r3.u));
  EXPECT_LE(reconstruction(a, r3), r3.scenario_bound);
}

TEST(Scenario, TruncatedTopKEqualColsRecoversFullSpectrum) {
  const linalg::MatrixF a = tall_case(8, 2, 17);
  const auto ref = linalg::reference_svd(a.cast<double>());
  SvdOptions opts;
  opts.threads = 1;
  opts.top_k = 8;  // k = n: the sketch spans the whole column space
  const Svd r = svd(a, opts);
  ASSERT_EQ(r.sigma.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(r.sigma[i], ref.sigma[i], 1e-4 * ref.sigma[0]);
  }
}

TEST(Scenario, TopKOneOnRankOneMatrixIsExact) {
  testing::CaseSpec spec;
  spec.cols = 8;
  spec.ratio = 4;
  spec.deficiency = 7;  // exactly rank one
  spec.seed = 29;
  const linalg::MatrixF a = testing::generate_case(spec).cast<float>();
  SvdOptions opts;
  opts.threads = 1;
  opts.top_k = 1;
  const Svd r = svd(a, opts);
  ASSERT_EQ(r.sigma.size(), 1u);
  EXPECT_NEAR(r.sigma[0], 1.0, 1e-4);
  EXPECT_LT(reconstruction(a, r), 1e-4);
}

// ---- facade/batch rejection ------------------------------------------------

TEST(Scenario, BatchRejectsEngagedFrontEnds) {
  Rng rng(9);
  std::vector<linalg::MatrixF> batch = {
      linalg::random_gaussian(24, 8, rng).cast<float>(),
      linalg::random_gaussian(24, 8, rng).cast<float>()};
  SvdOptions opts;
  opts.top_k = 2;
  EXPECT_THROW(svd_batch(batch, opts), InputError);
  opts = SvdOptions{};
  opts.scenario = Scenario::kTallSkinny;
  EXPECT_THROW(svd_batch(batch, opts), InputError);
  // kAuto never engages in a batch, even for very tall members.
  std::vector<linalg::MatrixF> tall_batch = {tall_case(8, 32, 1),
                                             tall_case(8, 32, 2)};
  SvdOptions auto_opts;
  auto_opts.threads = 1;
  const BatchSvd out = svd_batch(tall_batch, auto_opts);
  for (const Svd& r : out.results) EXPECT_TRUE(r.scenario.empty());
}

TEST(Scenario, EngagedFrontEndRejectsModeledBackendPin) {
  const linalg::MatrixF a = tall_case(8, 16);
  SvdOptions opts;
  opts.scenario = Scenario::kTallSkinny;
  opts.backend = "fpga-bcv";
  EXPECT_THROW(svd(a, opts), InputError);
  // The cpu pin is a functional backend and carries the inner core.
  opts.backend = "cpu";
  const Svd r = svd(a, opts);
  EXPECT_EQ(r.scenario, "tall-skinny");
  EXPECT_EQ(r.backend, "cpu");
}

// ---- attestation -----------------------------------------------------------

TEST(Scenario, AssembledResultsAreAttested) {
  const linalg::MatrixF a = tall_case(8, 16);
  SvdOptions opts;
  opts.threads = 1;
  opts.verify.mode = verify::VerifyMode::kAlways;
  const Svd r = svd(a, opts);
  EXPECT_EQ(r.scenario, "tall-skinny");
  EXPECT_TRUE(r.verify_report.checked);
  EXPECT_TRUE(r.verify_report.verified);
  // The scenario assembly rung is on the report, after the inner
  // core's own ladder attempts.
  ASSERT_FALSE(r.verify_report.attempts.empty());
  EXPECT_EQ(r.verify_report.attempts.back().backend, "scenario:tall-skinny");
  EXPECT_TRUE(r.verify_report.attempts.back().outcome.passed);

  // Truncated: the widened bound attests the assembly even though the
  // truncation residual fails the raw dense bound by construction.
  SvdOptions topk = opts;
  topk.top_k = 3;
  const Svd t = svd(a, topk);
  EXPECT_TRUE(t.verify_report.verified);
  EXPECT_EQ(t.verify_report.attempts.back().backend, "scenario:truncated");
}

// ---- rank-1 update ---------------------------------------------------------

TEST(Scenario, UpdateMatchesFromScratch) {
  Rng rng(13);
  const linalg::MatrixF a = linalg::random_gaussian(24, 12, rng).cast<float>();
  SvdOptions opts;
  opts.threads = 1;
  Svd s = svd(a, opts);
  ASSERT_EQ(s.v.rows(), s.v.cols());

  const linalg::MatrixD ud = linalg::random_gaussian(24, 1, rng);
  const linalg::MatrixD vd = linalg::random_gaussian(12, 1, rng);
  std::vector<float> u(24), v(12);
  for (std::size_t i = 0; i < 24; ++i) u[i] = static_cast<float>(ud(i, 0));
  for (std::size_t i = 0; i < 12; ++i) v[i] = static_cast<float>(vd(i, 0));

  scenarios::svd_update(s, u, v);
  EXPECT_EQ(s.scenario, "update");

  // A' = A + u v^T, from scratch in double.
  linalg::MatrixD ap = a.cast<double>();
  for (std::size_t c = 0; c < 12; ++c) {
    for (std::size_t r = 0; r < 24; ++r) ap(r, c) += ud(r, 0) * vd(c, 0);
  }
  const auto ref = linalg::reference_svd(ap);
  ASSERT_EQ(s.sigma.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(s.sigma[i], ref.sigma[i], 1e-4 * ref.sigma[0]);
  }
  EXPECT_LT(linalg::orthogonality_error(s.u.cast<double>()), 1e-4);
  EXPECT_LT(linalg::orthogonality_error(s.v.cast<double>()), 1e-4);
  EXPECT_LT(linalg::reconstruction_error(
                ap, s.u.cast<double>(),
                std::vector<double>(s.sigma.begin(), s.sigma.end()),
                s.v.cast<double>()),
            1e-4);

  // Downdate returns to the original spectrum.
  scenarios::svd_downdate(s, u, v);
  const auto ref0 = linalg::reference_svd(a.cast<double>());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(s.sigma[i], ref0.sigma[i], 1e-4 * ref0.sigma[0]);
  }
}

TEST(Scenario, UpdateRequiresFullSquareV) {
  const linalg::MatrixF a = tall_case(8, 4);
  SvdOptions opts;
  opts.threads = 1;
  opts.want_v = false;
  Svd s = svd(a, opts);
  std::vector<float> u(a.rows(), 0.0f), v(a.cols(), 0.0f);
  EXPECT_THROW(scenarios::svd_update(s, u, v), InputError);

  SvdOptions topk;
  topk.threads = 1;
  topk.top_k = 3;
  Svd t = svd(a, topk);
  EXPECT_THROW(scenarios::svd_update(t, u, v), InputError);
}

TEST(Scenario, StreamingSvdAppliesAndTracksDrift) {
  Rng rng(37);
  const linalg::MatrixF a0 =
      linalg::random_gaussian(20, 10, rng).cast<float>();
  SvdOptions opts;
  opts.threads = 1;
  opts.scenario_opts.update_check_interval = 2;
  scenarios::StreamingSvd stream(a0, opts);
  EXPECT_EQ(stream.updates(), 0);
  EXPECT_EQ(stream.redecompositions(), 0);

  for (int step = 0; step < 4; ++step) {
    const linalg::MatrixD ud = linalg::random_gaussian(20, 1, rng);
    const linalg::MatrixD vd = linalg::random_gaussian(10, 1, rng);
    std::vector<float> u(20), v(10);
    for (std::size_t i = 0; i < 20; ++i) {
      u[i] = static_cast<float>(0.1 * ud(i, 0));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      v[i] = static_cast<float>(0.1 * vd(i, 0));
    }
    stream.apply(u, v);
  }
  EXPECT_EQ(stream.updates(), 4);
  // Benign updates never trip the verifier: the factors still satisfy
  // the production bounds against the running matrix.
  EXPECT_EQ(stream.redecompositions(), 0);
  EXPECT_GE(stream.last_residual(), 0.0);
  EXPECT_EQ(stream.current().scenario, "update");
  const verify::ResultVerifier verifier(opts.precision);
  EXPECT_TRUE(verifier.check(stream.matrix(), stream.current()).passed);
}

// Cancelling the dominant rank-1 component in fp32 leaves cancellation
// noise ~ eps32 * sigma_1 in the running matrix while the true spectrum
// collapses to O(1): the relative drift bound breaks deterministically
// and the stream must re-decompose.
TEST(Scenario, StreamingSvdRedecomposesWhenDriftBreaksTheBound) {
  // sigma_1 = 1e6 dominates an O(1) tail: after the downdate the true
  // matrix is O(1) but both the running fp32 matrix and the fp32
  // factors carry ~eps32 * sigma_1 noise, so the relative residual
  // lands orders of magnitude above the drift bound.
  std::vector<double> sigma(12, 1.0);
  sigma[0] = 1e6;
  Rng rng(41);
  const linalg::MatrixD ad = linalg::matrix_with_spectrum(24, 12, sigma, rng);
  const linalg::MatrixF a0 = ad.cast<float>();
  const auto ref = linalg::reference_svd(a0.cast<double>());

  SvdOptions opts;
  opts.threads = 1;
  scenarios::StreamingSvd stream(a0, opts);

  // Downdate the dominant triplet: u = sigma_1 * u_1, v = v_1.
  std::vector<float> u(a0.rows()), v(a0.cols());
  for (std::size_t r = 0; r < a0.rows(); ++r) {
    u[r] = static_cast<float>(ref.sigma[0] * ref.u(r, 0));
  }
  for (std::size_t c = 0; c < a0.cols(); ++c) {
    v[c] = static_cast<float>(-ref.v(c, 0));
  }
  stream.apply(u, v);
  EXPECT_GE(stream.redecompositions(), 1);
  // After the re-decomposition the factors agree with the running
  // matrix again.
  const verify::ResultVerifier verifier(opts.precision);
  EXPECT_TRUE(verifier.check(stream.matrix(), stream.current()).passed);
}

// ---- result-cache identity (forced collision) ------------------------------

// Satellite contract: scenario and top_k are part of the cache key. The
// "collision" here is forced -- same matrix, same digest, same route --
// and the cache must still never answer a truncated request with the
// dense entry or vice versa.
TEST(ScenarioCache, ScenarioAndTopKArePartOfTheKey) {
  serve::ResultCache cache(8);
  Rng rng(3);
  const linalg::MatrixF a = linalg::random_gaussian(16, 8, rng).cast<float>();
  const std::uint64_t d = serve::ResultCache::digest(a);

  Svd dense;
  dense.u = a;  // placeholder factors; identity is what's under test
  dense.sigma.assign(8, 1.0f);
  cache.insert(a, d, dense);

  // Forced collision: the dense entry must not satisfy a scenario key.
  EXPECT_FALSE(cache.lookup(a, d, "", "truncated", 3).has_value());
  EXPECT_FALSE(cache.lookup(a, d, "", "auto", 3).has_value());

  Svd trunc;
  trunc.u = a;
  trunc.sigma.assign(3, 1.0f);
  trunc.scenario = "truncated";
  trunc.scenario_top_k = 3;
  cache.insert(a, d, trunc, "", "truncated", 3);

  const auto hit_dense = cache.lookup(a, d);
  ASSERT_TRUE(hit_dense.has_value());
  EXPECT_TRUE(hit_dense->scenario.empty());
  const auto hit_trunc = cache.lookup(a, d, "", "truncated", 3);
  ASSERT_TRUE(hit_trunc.has_value());
  EXPECT_EQ(hit_trunc->scenario_top_k, 3u);
  // top_k alone separates entries too (same scenario string).
  EXPECT_FALSE(cache.lookup(a, d, "", "truncated", 4).has_value());
  // Scenario-qualified erase removes only its own entry.
  EXPECT_TRUE(cache.erase(a, d, "", "truncated", 3));
  EXPECT_FALSE(cache.lookup(a, d, "", "truncated", 3).has_value());
  EXPECT_TRUE(cache.lookup(a, d).has_value());
}

// ---- serving layer ---------------------------------------------------------

serve::ServerOptions qos_server_options() {
  serve::ServerOptions options;
  options.workers = 1;
  options.svd.threads = 1;
  serve::TenantConfig tenant;
  tenant.name = "default";
  options.qos.tenants.push_back(tenant);
  options.qos.cache_enabled = true;
  options.qos.cache_capacity = 16;
  return options;
}

TEST(ScenarioServe, TruncatedRequestsServeSoloAndCacheByScenario) {
  serve::SvdServer server(qos_server_options());
  const linalg::MatrixF a = tall_case(12, 4, 51);

  serve::Request request;
  request.matrix = a;
  request.scenario = "auto";
  request.top_k = 3;
  const serve::Response first = server.serve(request);
  ASSERT_EQ(first.status, serve::ServeStatus::kOk);
  EXPECT_EQ(first.result.scenario, "truncated");
  EXPECT_EQ(first.result.sigma.size(), 3u);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.batch_size, 1u);  // scenario requests dispatch solo

  // Same request again: a scenario-keyed cache hit, bit-identical.
  const serve::Response again = server.serve(request);
  ASSERT_EQ(again.status, serve::ServeStatus::kOk);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_TRUE(same_bits(first.result.u, again.result.u));
  EXPECT_TRUE(same_bits(first.result.sigma, again.result.sigma));

  // The same bytes as a dense request miss the truncated entry and
  // compute the full decomposition.
  serve::Request dense;
  dense.matrix = a;
  const serve::Response full = server.serve(dense);
  ASSERT_EQ(full.status, serve::ServeStatus::kOk);
  EXPECT_FALSE(full.cache_hit);
  EXPECT_EQ(full.result.sigma.size(), a.cols());
  EXPECT_TRUE(full.result.scenario.empty());
  server.shutdown();
}

TEST(ScenarioServe, UnknownScenarioFailsDeterministically) {
  serve::ServerOptions options;
  options.workers = 1;
  options.svd.threads = 1;
  serve::SvdServer server(options);
  serve::Request request;
  Rng rng(7);
  request.matrix = linalg::random_gaussian(16, 8, rng).cast<float>();
  request.scenario = "banana";
  const serve::Response response = server.serve(request);
  EXPECT_EQ(response.status, serve::ServeStatus::kFailed);
  EXPECT_EQ(response.attempts, 1);  // no retry on a typed rejection
  server.shutdown();
}

// ---- observability ---------------------------------------------------------

TEST(Scenario, CountersSurfaceThroughObs) {
  obs::ObsContext obs;
  SvdOptions opts;
  opts.threads = 1;
  opts.observer = &obs;
  opts.verify.mode = verify::VerifyMode::kAlways;
  (void)svd(tall_case(8, 16), opts);
  opts.top_k = 2;
  (void)svd(tall_case(8, 4, 19), opts);
  const auto counters = obs.metrics().snapshot().counters;
  EXPECT_EQ(counters.at("scenario.tall_skinny"), 1u);
  EXPECT_EQ(counters.at("scenario.truncated"), 1u);
  EXPECT_GE(counters.at("scenario.verify.checked"), 2u);
  EXPECT_EQ(counters.count("scenario.verify.escalated"), 0u);
}

// ---- LSTM compression demo -------------------------------------------------

TEST(ScenarioCompression, LstmDemoReportsRatioAndError) {
  serve::SvdServer server(qos_server_options());
  scenarios::LstmCompressionOptions options;
  options.layers = 1;
  options.input_dim = 16;
  options.hidden_dim = 16;
  options.rank = 4;
  options.condition = 1e3;
  const scenarios::CompressionReport report =
      scenarios::compress_lstm(server, options);
  ASSERT_EQ(report.rows.size(), 8u);  // 4 W gates + 4 U gates
  EXPECT_EQ(report.served, 8u);
  for (const scenarios::CompressionRow& row : report.rows) {
    SCOPED_TRACE(row.name);
    EXPECT_EQ(row.status, "ok");
    EXPECT_GT(row.ratio, 1.0);  // rank 4 on 16x16 actually compresses
    EXPECT_GE(row.rel_error, 0.0);
    EXPECT_LE(row.rel_error, row.bound);
  }
  EXPECT_GT(report.mean_ratio, 1.0);
  // CSV: header + one line per matrix, stable column set.
  const std::string csv = report.csv();
  EXPECT_NE(csv.find("name,rows,cols,rank,ratio,rel_error,bound,status"),
            std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            report.rows.size() + 1);
  server.shutdown();
}

}  // namespace
}  // namespace hsvd
