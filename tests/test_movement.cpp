// Tests for inter-round movement extraction.
#include <gtest/gtest.h>

#include "jacobi/movement.hpp"
#include "jacobi/ordering.hpp"

namespace hsvd::jacobi {
namespace {

TEST(Movement, SlotMapCoversEveryColumnOnce) {
  auto s = make_schedule(OrderingKind::kShiftingRing, 8);
  for (std::size_t r = 0; r < s.size(); ++r) {
    auto where = slot_map(s, r);
    ASSERT_EQ(where.size(), 8u);
    std::vector<int> seen(4, 0);
    for (const auto& pos : where) {
      ASSERT_GE(pos.slot, 0);
      ASSERT_LT(pos.slot, 4);
      ++seen[static_cast<std::size_t>(pos.slot)];
    }
    for (int count : seen) EXPECT_EQ(count, 2);  // one left + one right
  }
}

TEST(Movement, SlotMapMatchesSchedule) {
  auto s = make_schedule(OrderingKind::kRing, 6);
  auto where = slot_map(s, 2);
  for (std::size_t slot = 0; slot < s[2].size(); ++slot) {
    const auto& pair = s[2][slot];
    EXPECT_EQ(where[static_cast<std::size_t>(pair.left)].slot,
              static_cast<int>(slot));
    EXPECT_EQ(where[static_cast<std::size_t>(pair.left)].side, Side::kLeft);
    EXPECT_EQ(where[static_cast<std::size_t>(pair.right)].side, Side::kRight);
  }
}

TEST(Movement, MovesOmitStationaryColumns) {
  auto s = make_schedule(OrderingKind::kRing, 8);
  auto moves = moves_between(s, 0, 1);
  for (const auto& m : moves) EXPECT_FALSE(m.from == m.to);
  EXPECT_LE(moves.size(), 8u);
}

TEST(Movement, EveryColumnAccountedAcrossRounds) {
  auto s = make_schedule(OrderingKind::kShiftingRing, 12);
  for (std::size_t r = 0; r + 1 < s.size(); ++r) {
    auto from = slot_map(s, r);
    auto to = slot_map(s, r + 1);
    auto moves = moves_between(s, r, r + 1);
    std::size_t stationary = 0;
    for (std::size_t c = 0; c < from.size(); ++c)
      if (from[c] == to[c]) ++stationary;
    EXPECT_EQ(moves.size() + stationary, from.size());
  }
}

TEST(Movement, WrapAroundMovesExist) {
  auto s = make_schedule(OrderingKind::kRing, 6);
  auto moves = moves_between(s, s.size() - 1, 0);
  EXPECT_FALSE(moves.empty());
}

TEST(Movement, RoundOutOfRangeThrows) {
  auto s = make_schedule(OrderingKind::kRing, 4);
  EXPECT_THROW(slot_map(s, s.size()), std::invalid_argument);
}

}  // namespace
}  // namespace hsvd::jacobi
