// Tests for the PL-side modules of Fig. 2 (data arrangement, sender with
// dynamic forwarding, receiver, system module).
#include <gtest/gtest.h>

#include "accel/pl_modules.hpp"

namespace hsvd::accel {
namespace {

TEST(DataArrangement, StagesBlocksSeriallyFromDdr) {
  versal::Channel ddr("ddr", 1e9);  // 1 GB/s
  DataArrangement arr(ddr, 3, 1e6); // 1 MB blocks -> 1 ms each
  arr.stage_from_ddr(0.0);
  EXPECT_NEAR(arr.block_ready(0), 1e-3, 1e-12);
  EXPECT_NEAR(arr.block_ready(1), 2e-3, 1e-12);
  EXPECT_NEAR(arr.block_ready(2), 3e-3, 1e-12);
  EXPECT_NEAR(arr.all_blocks_ready(), 3e-3, 1e-12);
}

TEST(DataArrangement, TracksBlockReadiness) {
  versal::Channel ddr("ddr", 1e9);
  DataArrangement arr(ddr, 2, 100);
  arr.set_block_ready(1, 5.0);
  EXPECT_DOUBLE_EQ(arr.block_ready(1), 5.0);
  EXPECT_DOUBLE_EQ(arr.all_blocks_ready(), 5.0);
  EXPECT_THROW(arr.block_ready(2), std::invalid_argument);
  EXPECT_THROW(arr.set_block_ready(-1, 0.0), std::invalid_argument);
}

TEST(DataArrangement, RejectsDegenerateShapes) {
  versal::Channel ddr("ddr", 1e9);
  EXPECT_THROW(DataArrangement(ddr, 0, 100), std::invalid_argument);
  EXPECT_THROW(DataArrangement(ddr, 2, 0), std::invalid_argument);
}

class SenderTest : public ::testing::Test {
 protected:
  SenderTest()
      : geo_(4, 4),
        array_(geo_, versal::vck190()),
        tx0_("tx0", 1e9),
        tx1_("tx1", 1e9) {
    versal::ForwardingTable fw;
    fw.bind(0, {1, 0});
    fw.bind(1, {1, 1});
    sender_ = std::make_unique<Sender>(tx0_, tx1_, std::move(fw), array_);
  }
  versal::ArrayGeometry geo_;
  versal::AieArraySim array_;
  versal::Channel tx0_, tx1_;
  std::unique_ptr<Sender> sender_;
};

TEST_F(SenderTest, RoutesPayloadThroughForwardingTable) {
  std::vector<float> payload(16, 1.0f);
  const double done = sender_->send_column(0, 1, /*column=*/7, /*task=*/0, 0.0,
                                           payload, 64);
  EXPECT_GT(done, 0.0);
  EXPECT_TRUE(array_.memory({1, 1}).contains("c7.t0"));
  EXPECT_FALSE(array_.memory({1, 0}).contains("c7.t0"));
}

TEST_F(SenderTest, SerializesPerChannel) {
  const double a = sender_->send_column(0, 0, 1, 0, 0.0, {}, 1000);
  const double b = sender_->send_column(0, 0, 2, 0, 0.0, {}, 1000);
  const double c = sender_->send_column(1, 1, 3, 0, 0.0, {}, 1000);
  EXPECT_GT(b, a);        // same channel: queued
  EXPECT_LT(c, b);        // other channel: parallel
}

TEST_F(SenderTest, UnknownDestinationThrows) {
  EXPECT_THROW(sender_->send_column(0, 9, 0, 0, 0.0, {}, 64),
               std::invalid_argument);
  EXPECT_THROW(sender_->send_column(2, 0, 0, 0, 0.0, {}, 64),
               std::invalid_argument);
}

TEST(ReceiverModule, SerializesPerChannelAndValidates) {
  versal::Channel rx0("rx0", 1e9), rx1("rx1", 1e9);
  Receiver receiver(rx0, rx1);
  const double a = receiver.receive_column(0, 0.0, 1e6);
  const double b = receiver.receive_column(0, 0.0, 1e6);
  const double c = receiver.receive_column(1, 0.0, 1e6);
  EXPECT_NEAR(a, 1e-3, 1e-12);
  EXPECT_NEAR(b, 2e-3, 1e-12);
  EXPECT_NEAR(c, 1e-3, 1e-12);
  EXPECT_THROW(receiver.receive_column(3, 0.0, 1.0), std::invalid_argument);
}

TEST(SystemModuleUnit, ConvergenceDecision) {
  SystemModule system(1e-6);
  system.begin_iteration();
  system.observe_pair(0.5);
  EXPECT_FALSE(system.should_terminate(true));
  EXPECT_DOUBLE_EQ(system.convergence_rate(), 0.5);
  system.begin_iteration();
  system.observe_pair(1e-9);
  EXPECT_TRUE(system.should_terminate(true));
  // Fixed-iteration mode never terminates on convergence.
  EXPECT_FALSE(system.should_terminate(false));
}

}  // namespace
}  // namespace hsvd::accel
