// Tests for matrix file I/O (MatrixMarket text and raw binary).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/matrix_io.hpp"

namespace hsvd::linalg {
namespace {

MatrixF sample_matrix() {
  Rng rng(81);
  return random_gaussian(7, 5, rng).cast<float>();
}

TEST(MatrixIo, MatrixMarketRoundTrip) {
  const MatrixF m = sample_matrix();
  const std::string path = "/tmp/hsvd_io_test.mtx";
  save_matrix_market(m, path);
  const MatrixF back = load_matrix_market(path);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::size_t i = 0; i < m.data().size(); ++i)
    EXPECT_NEAR(back.data()[i], m.data()[i], 1e-6f);
  std::remove(path.c_str());
}

TEST(MatrixIo, MatrixMarketSkipsComments) {
  const std::string path = "/tmp/hsvd_io_comments.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n"
        << "% a comment line\n"
        << "2 2\n1.5\n2.5\n-3.0\n4.0\n";
  }
  const MatrixF m = load_matrix_market(path);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m(1, 0), 2.5f);
  EXPECT_FLOAT_EQ(m(0, 1), -3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 4.0f);
  std::remove(path.c_str());
}

TEST(MatrixIo, MatrixMarketRejectsMalformed) {
  const std::string path = "/tmp/hsvd_io_bad.mtx";
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_THROW(load_matrix_market(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n2 2\n1.0\n";  // short
  }
  EXPECT_THROW(load_matrix_market(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n";
  }
  EXPECT_THROW(load_matrix_market(path), std::runtime_error);
  EXPECT_THROW(load_matrix_market("/nonexistent/path.mtx"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryRoundTripIsExact) {
  const MatrixF m = sample_matrix();
  const std::string path = "/tmp/hsvd_io_test.bin";
  save_binary(m, path);
  const MatrixF back = load_binary(path);
  EXPECT_EQ(back, m);  // bitwise identical
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryRejectsCorruption) {
  const std::string path = "/tmp/hsvd_io_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "XXXX garbage";
  }
  EXPECT_THROW(load_binary(path), std::runtime_error);
  // Truncated body.
  const MatrixF m = sample_matrix();
  save_binary(m, path);
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    content.resize(content.size() - 8);
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  EXPECT_THROW(load_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hsvd::linalg
