// End-to-end fault tests: injected faults are detected at the dataflow
// boundaries, failed tasks are isolated, recovery masks the faulty tile
// and re-places, and everything is deterministic across host thread
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "accel/accelerator.hpp"
#include "accel/campaign.hpp"
#include "accel/placement.hpp"
#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"

namespace hsvd::accel {
namespace {

HeteroSvdConfig small_config() {
  HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;   // 7 orth-layers -> two bands: inter-band DMA exists
  cfg.p_task = 2;
  cfg.iterations = 3;
  return cfg;
}

std::vector<linalg::MatrixF> small_batch(int n, std::uint64_t seed) {
  std::vector<linalg::MatrixF> batch;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    batch.push_back(linalg::random_gaussian(24, 16, rng).cast<float>());
  }
  return batch;
}

bool same_matrix(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

TEST(FaultRecovery, HungTileIsMaskedAndTheBatchRecovers) {
  const auto cfg = small_config();
  const auto batch = small_batch(4, 900);

  HeteroSvdAccelerator acc(cfg);
  const versal::TileCoord bad = acc.placement().tasks[0].orth.front()[1];
  versal::FaultPlan plan;
  plan.faults.push_back(
      {versal::FaultKind::kTileHang, bad, 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  acc.attach_faults(&injector);

  const RunResult run = acc.run(batch);
  EXPECT_EQ(run.failed_tasks, 0);
  EXPECT_EQ(run.recovery_runs, 1);
  ASSERT_EQ(acc.masked_tiles().size(), 1u);
  EXPECT_EQ(acc.masked_tiles().front(), bad);
  // The re-placed floorplan never assigns work to the masked tile.
  const auto tiles = used_tiles(acc.placement());
  EXPECT_TRUE(std::none_of(tiles.begin(), tiles.end(),
                           [&](const versal::TileCoord& t) { return t == bad; }));
  // Slot-0 tasks (0 and 2) went through recovery; slot-1 tasks did not.
  EXPECT_GT(run.tasks[0].recovery_attempts, 0);
  EXPECT_GT(run.tasks[2].recovery_attempts, 0);
  EXPECT_EQ(run.tasks[1].recovery_attempts, 0);
  EXPECT_EQ(run.tasks[3].recovery_attempts, 0);
  for (const auto& task : run.tasks) {
    EXPECT_EQ(task.status, hsvd::SvdStatus::kOk);
    EXPECT_FALSE(task.u.empty());
  }
  // Recovered work is appended to the simulated timeline.
  EXPECT_GT(run.tasks[0].start_seconds, run.tasks[1].start_seconds);
}

TEST(FaultRecovery, WithoutRetriesFailuresAreIsolatedBitExactly) {
  const auto cfg = small_config();
  const auto batch = small_batch(4, 901);

  HeteroSvdAccelerator reference(cfg);
  const RunResult clean = reference.run(batch);

  HeteroSvdConfig no_retry = cfg;
  no_retry.fault_retries = 0;
  HeteroSvdAccelerator acc(no_retry);
  const versal::TileCoord bad = acc.placement().tasks[0].orth.front()[0];
  versal::FaultPlan plan;
  plan.faults.push_back(
      {versal::FaultKind::kTileHang, bad, 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  acc.attach_faults(&injector);

  const RunResult run = acc.run(batch);
  // Slot 0 owns tasks 0 and 2; the sticky hang fails both.
  EXPECT_EQ(run.failed_tasks, 2);
  EXPECT_EQ(run.recovery_runs, 0);
  for (int t : {0, 2}) {
    const auto& task = run.tasks[static_cast<std::size_t>(t)];
    EXPECT_EQ(task.status, hsvd::SvdStatus::kFailed);
    EXPECT_FALSE(task.ok());
    EXPECT_FALSE(task.message.empty());
    ASSERT_TRUE(task.fault_tile.has_value());
    EXPECT_EQ(*task.fault_tile, bad);
    EXPECT_TRUE(task.u.empty());
  }
  // Healthy tasks complete bit-identical to the fault-free run.
  for (int t : {1, 3}) {
    const auto& task = run.tasks[static_cast<std::size_t>(t)];
    const auto& ref = clean.tasks[static_cast<std::size_t>(t)];
    EXPECT_EQ(task.status, hsvd::SvdStatus::kOk);
    EXPECT_TRUE(same_matrix(task.u, ref.u));
    EXPECT_EQ(task.sigma, ref.sigma);
    EXPECT_EQ(task.iterations, ref.iterations);
  }
}

TEST(FaultRecovery, ChecksumCatchesInFabricBitFlip) {
  const auto cfg = small_config();
  const auto batch = small_batch(2, 902);

  HeteroSvdConfig no_retry = cfg;
  no_retry.fault_retries = 0;
  HeteroSvdAccelerator acc(no_retry);
  const versal::TileCoord bad = acc.placement().tasks[1].orth.front()[2];
  versal::FaultPlan plan;
  plan.seed = 31;
  plan.faults.push_back(
      {versal::FaultKind::kMemoryBitFlip, bad, 0, 1, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  acc.attach_faults(&injector);

  const RunResult run = acc.run(batch);
  EXPECT_EQ(injector.event_count(), 1u);
  EXPECT_EQ(run.failed_tasks, 1);
  EXPECT_EQ(run.tasks[1].status, hsvd::SvdStatus::kFailed);
  EXPECT_NE(run.tasks[1].message.find("checksum"), std::string::npos);
  EXPECT_EQ(run.tasks[0].status, hsvd::SvdStatus::kOk);
}

TEST(FaultRecovery, DroppedDmaShadowIsDetected) {
  const auto cfg = small_config();
  const auto batch = small_batch(2, 903);

  HeteroSvdConfig no_retry = cfg;
  no_retry.fault_retries = 0;
  HeteroSvdAccelerator acc(no_retry);
  // DMA faults target the source tile of an inter-band move.
  versal::TileCoord src{-1, -1};
  for (const auto& tr : acc.dataflow(0).transitions) {
    for (const auto& mv : tr.moves) {
      if (mv.is_dma) {
        src = mv.src;
        break;
      }
    }
    if (src.row >= 0) break;
  }
  ASSERT_GE(src.row, 0) << "two-band placement must have inter-band DMA";
  versal::FaultPlan plan;
  plan.faults.push_back(
      {versal::FaultKind::kDmaDrop, src, 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);
  acc.attach_faults(&injector);

  const RunResult run = acc.run(batch);
  EXPECT_EQ(run.failed_tasks, 1);
  EXPECT_EQ(run.tasks[0].status, hsvd::SvdStatus::kFailed);
  EXPECT_NE(run.tasks[0].message.find("DMA"), std::string::npos);
}

TEST(FaultRecovery, OutcomesAreThreadCountInvariant) {
  const auto cfg = small_config();
  const auto batch = small_batch(6, 904);

  const auto run_with_threads = [&](int threads) {
    HeteroSvdConfig c = cfg;
    c.host_threads = threads;
    HeteroSvdAccelerator acc(c);
    const versal::TileCoord bad = acc.placement().tasks[1].orth.front()[0];
    versal::FaultPlan plan;
    plan.seed = 5;
    plan.faults.push_back(
        {versal::FaultKind::kTileHang, bad, 0, 2, 0.0, 1.0});
    plan.faults.push_back({versal::FaultKind::kStreamDrop,
                           acc.placement().tasks[0].orth.front()[3], 0, 5,
                           0.0, 1.0});
    versal::FaultInjector injector(plan);
    acc.attach_faults(&injector);
    RunResult run = acc.run(batch);
    return std::make_pair(std::move(run), injector.event_count());
  };

  const auto [sequential, seq_events] = run_with_threads(1);
  const auto [parallel, par_events] = run_with_threads(4);
  EXPECT_EQ(seq_events, par_events);
  ASSERT_EQ(sequential.tasks.size(), parallel.tasks.size());
  for (std::size_t t = 0; t < sequential.tasks.size(); ++t) {
    const auto& s = sequential.tasks[t];
    const auto& p = parallel.tasks[t];
    EXPECT_EQ(s.status, p.status) << "task " << t;
    EXPECT_EQ(s.recovery_attempts, p.recovery_attempts) << "task " << t;
    EXPECT_TRUE(same_matrix(s.u, p.u)) << "task " << t;
    EXPECT_EQ(s.sigma, p.sigma) << "task " << t;
    EXPECT_DOUBLE_EQ(s.end_seconds, p.end_seconds) << "task " << t;
  }
  EXPECT_EQ(sequential.failed_tasks, parallel.failed_tasks);
  EXPECT_EQ(sequential.recovery_runs, parallel.recovery_runs);
}

TEST(FaultRecovery, CampaignSweepIsCleanAndRendersCsv) {
  CampaignOptions options;
  options.trials_per_kind = 1;
  options.batch = 2;
  options.seed = 17;
  const auto outcomes = run_campaign(options);
  EXPECT_EQ(outcomes.size(), 8u);  // one trial per fault kind
  EXPECT_TRUE(campaign_clean(outcomes));
  const std::string csv = campaign_csv(outcomes);
  EXPECT_NE(csv.find("kind,plan_seed"), std::string::npos);
  EXPECT_NE(csv.find("tile-hang"), std::string::npos);
  EXPECT_NE(csv.find("plio-degrade"), std::string::npos);
  // The silent-error kind rides in the default sweep, scored by the
  // attestation layer instead of the dataflow detectors.
  EXPECT_NE(csv.find("silent-error"), std::string::npos);
  EXPECT_NE(csv.find("verify_caught"), std::string::npos);
  bool saw_silent = false;
  for (const auto& out : outcomes) {
    if (out.kind != versal::FaultKind::kSilentError) continue;
    saw_silent = true;
    EXPECT_EQ(out.silent_escapes, 0);
    EXPECT_GT(out.verify_caught, 0);
  }
  EXPECT_TRUE(saw_silent);
}

// --- facade-level behaviour ---------------------------------------------

TEST(FaultRecovery, FacadeSvdThrowsWhenRecoveryIsExhausted) {
  Rng rng(905);
  const auto a = linalg::random_gaussian(12, 8, rng).cast<float>();
  accel::HeteroSvdConfig cfg;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  const auto placed = try_place(cfg);
  ASSERT_TRUE(placed.has_value());
  versal::FaultPlan plan;
  plan.faults.push_back({versal::FaultKind::kTileHang,
                         placed->tasks[0].orth.front()[0], 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);

  SvdOptions options;
  options.config = cfg;
  options.want_v = false;
  options.fault_injector = &injector;
  options.fault_retries = 0;
  EXPECT_THROW(svd(a, options), FaultDetected);
}

TEST(FaultRecovery, FacadeBatchRecoversAndReportsAttempts) {
  Rng rng(906);
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(linalg::random_gaussian(12, 8, rng).cast<float>());
  }
  accel::HeteroSvdConfig cfg;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  const auto placed = try_place(cfg);
  ASSERT_TRUE(placed.has_value());
  versal::FaultPlan plan;
  plan.faults.push_back({versal::FaultKind::kTileHang,
                         placed->tasks[0].orth.front()[1], 0, 0, 0.0, 1.0});
  versal::FaultInjector injector(plan);

  SvdOptions options;
  options.config = cfg;
  options.fault_injector = &injector;
  const BatchSvd out = svd_batch(batch, options);
  EXPECT_EQ(out.failed_tasks, 0);
  EXPECT_EQ(out.recovery_runs, 1);
  for (const auto& r : out.results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.recovery_attempts, 1);
    EXPECT_FALSE(r.u.empty());
    EXPECT_FALSE(r.v.empty());  // want_v survives recovery
  }
}

}  // namespace
}  // namespace hsvd::accel
