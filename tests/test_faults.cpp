// Tests for the fault injection subsystem (versal/faults.hpp): trigger
// semantics, per-resource counting, deterministic derived randomness, and
// the AieArraySim hooks that consult it.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "versal/array.hpp"
#include "versal/faults.hpp"
#include "versal/resources.hpp"

namespace hsvd::versal {
namespace {

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i) + 0.5f;
  return v;
}

TEST(FaultChecksum, SensitiveToSingleBit) {
  std::vector<float> a = ramp(64);
  std::vector<float> b = a;
  const std::uint64_t ca = buffer_checksum(a);
  EXPECT_EQ(ca, buffer_checksum(b));  // deterministic
  std::uint32_t bits;
  std::memcpy(&bits, &b[17], sizeof(bits));
  bits ^= 1u << 13;
  std::memcpy(&b[17], &bits, sizeof(bits));
  EXPECT_NE(ca, buffer_checksum(b));
}

TEST(FaultKinds, NamesAndCorruptionClass) {
  EXPECT_STREQ(to_string(FaultKind::kTileHang), "tile-hang");
  EXPECT_STREQ(to_string(FaultKind::kPlioDegrade), "plio-degrade");
  EXPECT_TRUE(corrupts(FaultKind::kTileHang));
  EXPECT_TRUE(corrupts(FaultKind::kMemoryBitFlip));
  EXPECT_TRUE(corrupts(FaultKind::kStreamDrop));
  EXPECT_TRUE(corrupts(FaultKind::kDmaDrop));
  EXPECT_FALSE(corrupts(FaultKind::kStreamStall));
  EXPECT_FALSE(corrupts(FaultKind::kDmaStall));
  EXPECT_FALSE(corrupts(FaultKind::kPlioDegrade));
}

TEST(FaultInjector, HangFiresAtOrdinalAndIsSticky) {
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kTileHang, {2, 3}, 0, 2, 0.0, 1.0});
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.hang_core({2, 3}));  // op 0
  EXPECT_FALSE(inj.hang_core({2, 3}));  // op 1
  EXPECT_TRUE(inj.hang_core({2, 3}));   // op 2: triggers
  EXPECT_TRUE(inj.hang_core({2, 3}));   // sticky ever after
  // Other tiles have their own counters and never hang.
  EXPECT_FALSE(inj.hang_core({2, 4}));
  EXPECT_EQ(inj.event_count(), 1u);
}

TEST(FaultInjector, StreamDropFiresExactlyOnceAtItsOrdinal) {
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kStreamDrop, {1, 1}, 0, 1, 0.0, 1.0});
  FaultInjector inj(plan);
  bool drop = false;
  EXPECT_EQ(inj.on_stream({1, 1}, &drop), 0.0);
  EXPECT_FALSE(drop);                    // op 0: not yet
  EXPECT_EQ(inj.on_stream({1, 1}, &drop), 0.0);
  EXPECT_TRUE(drop);                     // op 1: fires
  drop = false;
  EXPECT_EQ(inj.on_stream({1, 1}, &drop), 0.0);
  EXPECT_FALSE(drop);                    // one-shot: op 2 is clean
}

TEST(FaultInjector, StallDelaysWithoutDropping) {
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kDmaStall, {0, 5}, 0, 0, 3e-6, 1.0});
  FaultInjector inj(plan);
  bool drop = false;
  EXPECT_DOUBLE_EQ(inj.on_dma({0, 5}, &drop), 3e-6);
  EXPECT_FALSE(drop);
  EXPECT_DOUBLE_EQ(inj.on_dma({0, 5}, &drop), 0.0);  // one-shot
}

TEST(FaultInjector, BitFlipIsSingleBitAndSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.faults.push_back({FaultKind::kMemoryBitFlip, {4, 4}, 0, 0, 0.0, 1.0});

  const std::vector<float> original = ramp(32);
  std::vector<float> first = original;
  FaultInjector a(plan);
  EXPECT_TRUE(a.corrupt_payload({4, 4}, first));

  // Exactly one bit differs from the original.
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint32_t x, y;
    std::memcpy(&x, &original[i], sizeof(x));
    std::memcpy(&y, &first[i], sizeof(y));
    flipped_bits += std::popcount(x ^ y);
  }
  EXPECT_EQ(flipped_bits, 1);

  // A fresh injector with the same plan corrupts the same bit.
  std::vector<float> second = original;
  FaultInjector b(plan);
  EXPECT_TRUE(b.corrupt_payload({4, 4}, second));
  EXPECT_EQ(first, second);

  // A different seed (almost surely) picks a different bit.
  plan.seed = 78;
  std::vector<float> third = original;
  FaultInjector c(plan);
  EXPECT_TRUE(c.corrupt_payload({4, 4}, third));
  EXPECT_NE(first, third);
}

TEST(FaultInjector, ResetRearms) {
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kStreamDrop, {0, 0}, 0, 0, 0.0, 1.0});
  FaultInjector inj(plan);
  bool drop = false;
  inj.on_stream({0, 0}, &drop);
  EXPECT_TRUE(drop);
  EXPECT_EQ(inj.event_count(), 1u);
  inj.reset();
  EXPECT_EQ(inj.event_count(), 0u);
  drop = false;
  inj.on_stream({0, 0}, &drop);
  EXPECT_TRUE(drop);  // counter and armed state both rewound
}

TEST(FaultInjector, PlioScaleCombinesPerSlot) {
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kPlioDegrade, {-1, -1}, 1, 0, 0.0, 0.5});
  plan.faults.push_back({FaultKind::kPlioDegrade, {-1, -1}, 1, 0, 0.0, 0.5});
  FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.plio_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.plio_scale(1), 0.25);
}

// --- AieArraySim hook integration -------------------------------------

TEST(FaultArray, HungCoreReportsUnreachableCompletion) {
  AieArraySim array(ArrayGeometry(8, 50), vck190());
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kTileHang, {3, 3}, 0, 0, 0.0, 1.0});
  FaultInjector inj(plan);
  array.attach_faults(&inj);
  EXPECT_TRUE(std::isinf(array.run_kernel({3, 3}, 0.0, 1e-6)));
  // Healthy tiles are untouched.
  EXPECT_DOUBLE_EQ(array.run_kernel({3, 4}, 0.0, 1e-6), 1e-6);
  // The hung core's timeline stays empty: no phantom busy time.
  EXPECT_DOUBLE_EQ(array.core({3, 3}).busy_seconds(), 0.0);
}

TEST(FaultArray, DroppedDmaNeverLandsTheShadow) {
  AieArraySim array(ArrayGeometry(8, 50), vck190());
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kDmaDrop, {1, 1}, 0, 0, 0.0, 1.0});
  FaultInjector inj(plan);
  array.attach_faults(&inj);
  array.memory({1, 1}).store("c0.t0", ramp(16));
  const double done = array.dma_move({1, 1}, {5, 5}, "c0.t0", 0.0);
  EXPECT_GT(done, 0.0);  // the engine still burned its time
  EXPECT_FALSE(array.memory({5, 5}).contains("c0.t0#dma"));
  EXPECT_TRUE(array.memory({1, 1}).contains("c0.t0"));  // source intact
  // The next DMA from the same tile is clean (one-shot).
  array.memory({1, 1}).store("c1.t0", ramp(16));
  array.dma_move({1, 1}, {5, 5}, "c1.t0", 0.0);
  EXPECT_TRUE(array.memory({5, 5}).contains("c1.t0#dma"));
}

TEST(FaultArray, StreamBitFlipIsCaughtByChecksum) {
  AieArraySim array(ArrayGeometry(8, 50), vck190());
  FaultPlan plan;
  plan.seed = 9;
  plan.faults.push_back({FaultKind::kMemoryBitFlip, {2, 7}, 0, 0, 0.0, 1.0});
  FaultInjector inj(plan);
  array.attach_faults(&inj);
  Packet packet;
  packet.header = {0, 4, 2};
  packet.payload = ramp(24);
  const std::uint64_t sent = buffer_checksum(packet.payload);
  array.stream_packet({2, 7}, packet, 0.0, /*store_payload=*/true);
  ASSERT_TRUE(array.memory({2, 7}).contains("c4.t2"));
  const auto stored = array.memory({2, 7}).load("c4.t2");
  EXPECT_NE(buffer_checksum(stored), sent);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events().front().kind, FaultKind::kMemoryBitFlip);
}

TEST(FaultArray, StallStretchesTheTimelineOnly) {
  AieArraySim clean_array(ArrayGeometry(8, 50), vck190());
  AieArraySim stalled_array(ArrayGeometry(8, 50), vck190());
  FaultPlan plan;
  plan.faults.push_back({FaultKind::kStreamStall, {0, 2}, 0, 0, 5e-6, 1.0});
  FaultInjector inj(plan);
  stalled_array.attach_faults(&inj);
  Packet packet;
  packet.header = {0, 0, 0};
  packet.payload = ramp(16);
  const double clean_done =
      clean_array.stream_packet({0, 2}, packet, 0.0, true);
  const double stalled_done =
      stalled_array.stream_packet({0, 2}, packet, 0.0, true);
  EXPECT_NEAR(stalled_done - clean_done, 5e-6, 1e-12);
  // Payload intact: stalls never corrupt.
  EXPECT_EQ(stalled_array.memory({0, 2}).load("c0.t0"),
            clean_array.memory({0, 2}).load("c0.t0"));
}

}  // namespace
}  // namespace hsvd::versal
