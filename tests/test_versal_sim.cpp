// Tests for the Versal simulator substrate: tile memory accounting,
// timelines/channels, packets, and the array-level transfer mechanisms.
#include <gtest/gtest.h>

#include "versal/array.hpp"
#include "versal/memory.hpp"
#include "versal/packet.hpp"
#include "versal/timeline.hpp"

namespace hsvd::versal {
namespace {

TEST(TileMemory, StoresAndLoads) {
  TileMemory mem(1024);
  mem.store("a", {1.0f, 2.0f});
  EXPECT_TRUE(mem.contains("a"));
  EXPECT_EQ(mem.load("a")[1], 2.0f);
  EXPECT_EQ(mem.used_bytes(), 8u);
}

TEST(TileMemory, OverflowThrows) {
  TileMemory mem(16);  // room for 4 floats
  mem.store("a", {1, 2, 3, 4});
  EXPECT_THROW(mem.store("b", {5.0f}), std::runtime_error);
  // Replacing an existing buffer of equal size is fine.
  mem.store("a", {9, 9, 9, 9});
  EXPECT_EQ(mem.load("a")[0], 9.0f);
}

TEST(TileMemory, EraseReleasesCapacity) {
  TileMemory mem(16);
  mem.store("a", {1, 2, 3, 4});
  mem.erase("a");
  EXPECT_EQ(mem.used_bytes(), 0u);
  EXPECT_EQ(mem.peak_bytes(), 16u);  // peak is sticky
  mem.store("b", {1, 2, 3, 4});      // fits again
  EXPECT_TRUE(mem.contains("b"));
}

TEST(TileMemory, MissingBufferThrows) {
  TileMemory mem(64);
  EXPECT_THROW(mem.load("ghost"), std::invalid_argument);
  mem.erase("ghost");  // erase of absent key is a no-op
}

TEST(Timeline, SerializesOperations) {
  Timeline t("x");
  EXPECT_DOUBLE_EQ(t.schedule(0.0, 2.0), 2.0);
  // Ready earlier than the resource frees: starts at 2.
  EXPECT_DOUBLE_EQ(t.schedule(1.0, 1.0), 3.0);
  // Ready later than free: idle gap allowed.
  EXPECT_DOUBLE_EQ(t.schedule(10.0, 1.0), 11.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(), 4.0);
}

TEST(Channel, TransferTimeFollowsRate) {
  Channel ch("c", 1e9);  // 1 GB/s
  EXPECT_DOUBLE_EQ(ch.transfer_duration(1e6), 1e-3);
  const double done1 = ch.transfer(0.0, 1e6);
  const double done2 = ch.transfer(0.0, 1e6);  // queued behind the first
  EXPECT_DOUBLE_EQ(done1, 1e-3);
  EXPECT_DOUBLE_EQ(done2, 2e-3);
}

TEST(Packet, BytesIncludeHeaderBeat) {
  Packet p;
  p.payload.assign(128, 0.0f);
  EXPECT_EQ(p.bytes(), 16u + 512u);
}

TEST(ForwardingTable, BindsAndRejectsDuplicates) {
  ForwardingTable table;
  table.bind(3, {1, 2});
  EXPECT_TRUE(table.has(3));
  EXPECT_EQ(table.route(3), (TileCoord{1, 2}));
  EXPECT_THROW(table.bind(3, {0, 0}), std::invalid_argument);
  EXPECT_THROW(table.route(9), std::invalid_argument);
}

class ArraySimTest : public ::testing::Test {
 protected:
  ArraySimTest() : geo_(8, 8), sim_(geo_, vck190()) {}
  ArrayGeometry geo_;
  AieArraySim sim_;
};

TEST_F(ArraySimTest, NeighbourMoveTransfersOwnership) {
  sim_.memory({0, 3}).store("k", {1, 2, 3});
  sim_.neighbour_move({0, 3}, {1, 3}, "k");
  EXPECT_FALSE(sim_.memory({0, 3}).contains("k"));
  EXPECT_TRUE(sim_.memory({1, 3}).contains("k"));
  EXPECT_EQ(sim_.stats().neighbour_transfers, 1u);
}

TEST_F(ArraySimTest, NeighbourMoveRejectsNonNeighbours) {
  EXPECT_THROW(sim_.neighbour_move({0, 0}, {4, 4}, "k"), std::invalid_argument);
}

TEST_F(ArraySimTest, DmaMoveDuplicatesBuffer) {
  sim_.memory({0, 0}).store("k", {1, 2, 3, 4});
  const double done = sim_.dma_move({0, 0}, {5, 5}, "k", 0.0);
  EXPECT_GT(done, 0.0);
  // Shadow copy coexists with the original: the 2x memory cost.
  EXPECT_TRUE(sim_.memory({0, 0}).contains("k"));
  EXPECT_TRUE(sim_.memory({5, 5}).contains("k#dma"));
  EXPECT_EQ(sim_.stats().dma_transfers, 1u);
  EXPECT_EQ(sim_.stats().dma_bytes, 16u);
}

TEST_F(ArraySimTest, DmaChargesSetupPlusTransfer) {
  // 1 KB over the DMA engine at 4 B/cycle @ 1.25 GHz plus the 300-cycle
  // buffer-descriptor/lock setup.
  sim_.memory({0, 0}).store("k", std::vector<float>(256, 1.0f));
  const double done = sim_.dma_move({0, 0}, {3, 3}, "k", 0.0);
  EXPECT_NEAR(done, sim_.dma_setup_seconds() + 1024.0 / (4.0 * 1.25e9), 1e-12);
  EXPECT_GT(sim_.dma_setup_seconds(), 0.0);
}

TEST_F(ArraySimTest, TimingOnlyDmaUsesByteHint) {
  const double done = sim_.dma_move({0, 0}, {3, 3}, "nothing", 0.0, 2048);
  EXPECT_NEAR(done, sim_.dma_setup_seconds() + 2048.0 / (4.0 * 1.25e9), 1e-12);
  EXPECT_EQ(sim_.stats().dma_bytes, 2048u);
}

TEST_F(ArraySimTest, StreamPacketStoresPayloadAndSerializes) {
  Packet p;
  p.header = {0, 7, 0};
  p.payload.assign(64, 2.0f);
  const double t1 = sim_.stream_packet({2, 2}, p, 0.0, true);
  const double t2 = sim_.stream_packet({2, 2}, p, 0.0, false);
  EXPECT_GT(t2, t1);  // same port: serialized
  EXPECT_TRUE(sim_.memory({2, 2}).contains("c7.t0"));
  EXPECT_EQ(sim_.stats().stream_packets, 2u);
}

TEST_F(ArraySimTest, KernelsAccumulateUtilization) {
  sim_.run_kernel({1, 1}, 0.0, 1e-6);
  sim_.run_kernel({1, 1}, 0.0, 1e-6);
  EXPECT_EQ(sim_.stats().kernel_invocations, 2u);
  // One active core busy 2 us over a 4 us makespan: 50%.
  EXPECT_NEAR(sim_.core_utilization(4e-6), 0.5, 1e-9);
}

TEST_F(ArraySimTest, ResetTimeClearsTimelinesButKeepsStats) {
  sim_.run_kernel({1, 1}, 0.0, 1e-6);
  sim_.reset_time();
  EXPECT_DOUBLE_EQ(sim_.core({1, 1}).next_free(), 0.0);
  EXPECT_EQ(sim_.stats().kernel_invocations, 1u);  // stats are cumulative
}

TEST_F(ArraySimTest, PeakMemoryAggregates) {
  sim_.memory({0, 0}).store("a", std::vector<float>(100, 0.0f));
  sim_.memory({3, 3}).store("b", std::vector<float>(50, 0.0f));
  sim_.memory({0, 0}).erase("a");
  EXPECT_EQ(sim_.peak_memory_bytes(), 600u);
}

}  // namespace
}  // namespace hsvd::versal
