// Cross-module property tests: invariants that hold across the whole
// parameter space rather than at hand-picked points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "accel/dataflow.hpp"
#include "accel/placement.hpp"
#include "common/rng.hpp"
#include "jacobi/movement.hpp"
#include "jacobi/ordering.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"
#include "versal/geometry.hpp"

namespace hsvd {
namespace {

// Every interior core reaches exactly four memory modules: its own, the
// two vertical neighbours', and one horizontal neighbour's (the AIE1
// connectivity the whole co-design is built on).
TEST(GeometryProperty, InteriorCoresReachExactlyFourMemories) {
  versal::ArrayGeometry geo(8, 12);
  for (int r = 1; r < geo.rows() - 1; ++r) {
    for (int c = 1; c < geo.cols() - 1; ++c) {
      int reachable = 0;
      for (int mr = 0; mr < geo.rows(); ++mr) {
        for (int mc = 0; mc < geo.cols(); ++mc) {
          if (geo.core_can_access_memory({r, c}, {mr, mc})) ++reachable;
        }
      }
      EXPECT_EQ(reachable, 4) << "core (" << r << "," << c << ")";
    }
  }
}

// Neighbour-transfer reachability is at most one column apart and one
// row apart: no teleporting.
TEST(GeometryProperty, NeighbourTransfersAreLocal) {
  versal::ArrayGeometry geo(6, 10);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 10; ++c) {
      for (int dc = -3; dc <= 3; ++dc) {
        const versal::TileCoord dst{r + 1, c + dc};
        if (!geo.contains(dst)) continue;
        if (geo.neighbour_transfer_possible({r, c}, dst)) {
          EXPECT_LE(std::abs(dc), 1);
        }
      }
    }
  }
}

// A schedule reused cyclically across iterations keeps covering every
// pair exactly once per sweep (the accelerator repeats the same rounds).
TEST(OrderingProperty2, CyclicReuseKeepsCoverage) {
  const int n = 12;
  auto s = jacobi::make_schedule(jacobi::OrderingKind::kShiftingRing, n);
  for (int sweep = 0; sweep < 3; ++sweep) {
    std::set<std::pair<int, int>> seen;
    for (const auto& round : s) {
      for (const auto& pair : round) {
        auto key = std::minmax(pair.left, pair.right);
        EXPECT_TRUE(seen.insert({key.first, key.second}).second);
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n * (n - 1) / 2));
  }
}

// The ring ordering's movement really is monolithic: every inter-round
// move is "stay" or "one slot leftward (cyclic)".
TEST(OrderingProperty2, RingMovementIsUnidirectional) {
  for (int k : {2, 3, 5, 8}) {
    auto s = jacobi::make_schedule(jacobi::OrderingKind::kRing, 2 * k);
    for (std::size_t r = 0; r + 1 < s.size(); ++r) {
      for (const auto& mv : jacobi::moves_between(s, r, r + 1)) {
        const int delta = (mv.to.slot - mv.from.slot + k) % k;
        // Either a side swap within the site (delta 0) or one site
        // leftward (delta -1 mod k); never rightward or long.
        EXPECT_TRUE(delta == 0 || delta == k - 1)
            << "k=" << k << " round " << r << " delta " << delta;
      }
    }
  }
}

// The shifting ring's physical movement per transition is a single wrap
// plus aligned moves: at most one column changes physical slot by more
// than one position.
TEST(OrderingProperty2, ShiftingRingHasOneWrapPerTransition) {
  for (int k : {3, 4, 6, 8, 11}) {
    auto s = jacobi::make_schedule(jacobi::OrderingKind::kShiftingRing, 2 * k, 1);
    for (std::size_t r = 0; r + 1 < s.size(); ++r) {
      const auto from = jacobi::slot_map(s, r);
      const auto to = jacobi::slot_map(s, r + 1);
      int long_moves = 0;
      for (std::size_t col = 0; col < from.size(); ++col) {
        if (std::abs(to[col].slot - from[col].slot) > 1) ++long_moves;
      }
      EXPECT_LE(long_moves, 1) << "k=" << k << " round " << r;
    }
  }
}

// Placement determinism: the same config always yields the same tiles
// (the accelerator and the DSE rely on this).
TEST(PlacementProperty, Deterministic) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 256;
  cfg.p_eng = 6;
  cfg.p_task = 3;
  auto a = accel::place(cfg);
  auto b = accel::place(cfg);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].orth, b.tasks[t].orth);
    EXPECT_EQ(a.tasks[t].norm, b.tasks[t].norm);
    EXPECT_EQ(a.tasks[t].mem, b.tasks[t].mem);
  }
}

// Stacked single-band slots start at different row parities, yet the
// parity-aware shifting ring keeps the per-sweep DMA minimal for both.
TEST(PlacementProperty, StackedSlotsKeepMinimalDma) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 64;
  cfg.p_eng = 2;
  cfg.p_task = 2;  // stacked: slot 0 at row 0, slot 1 at row 4
  auto placement = accel::place(cfg);
  versal::ArrayGeometry geo(cfg.device.aie_rows, cfg.device.aie_cols);
  for (const auto& task : placement.tasks) {
    const int parity = task.orth[0][0].row % 2;
    auto schedule =
        jacobi::make_schedule(cfg.ordering, cfg.pair_width(), parity);
    auto plan =
        accel::build_dataflow(schedule, task, geo,
                              accel::MemoryStrategy::kRelocated);
    EXPECT_EQ(plan.total_dma(), 2 * (cfg.p_eng - 1))
        << "slot starting at row " << task.orth[0][0].row;
  }
}

// Spectrum scale-equivariance of the whole numeric stack: svd(c*A) has
// singular values c*sigma(A).
TEST(NumericsProperty, SpectrumScalesLinearly) {
  Rng rng(321);
  auto ad = linalg::random_gaussian(16, 8, rng);
  auto scaled = ad;
  for (double& v : scaled.data()) v *= 3.5;
  auto r1 = linalg::reference_svd(ad);
  auto r2 = linalg::reference_svd(scaled);
  for (std::size_t t = 0; t < r1.sigma.size(); ++t) {
    EXPECT_NEAR(r2.sigma[t], 3.5 * r1.sigma[t], 1e-8 * (1 + r1.sigma[t]));
  }
}

// Orthogonal invariance: multiplying by an orthogonal matrix on the left
// preserves the spectrum.
TEST(NumericsProperty, OrthogonalInvariance) {
  Rng rng(322);
  auto ad = linalg::random_gaussian(12, 6, rng);
  auto q = linalg::random_orthogonal(12, rng);
  auto qa = linalg::matmul(q, ad);
  auto r1 = linalg::reference_svd(ad);
  auto r2 = linalg::reference_svd(qa);
  EXPECT_LT(linalg::spectrum_distance(r1.sigma, r2.sigma), 1e-8);
}

}  // namespace
}  // namespace hsvd
