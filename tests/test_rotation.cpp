// Tests for the Jacobi rotation closed form (paper eqs. (3)-(5)).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"

namespace hsvd::jacobi {
namespace {

TEST(Rotation, IdentityWhenAlreadyOrthogonal) {
  auto r = compute_rotation<double>(2.0, 3.0, 0.0);
  EXPECT_TRUE(r.identity);
  EXPECT_DOUBLE_EQ(r.c, 1.0);
  EXPECT_DOUBLE_EQ(r.s, 0.0);
}

TEST(Rotation, ThresholdSuppressesTinyCoherence) {
  // coherence = 1e-9 / sqrt(1*1) = 1e-9 < 1e-6 threshold
  auto r = compute_rotation<double>(1.0, 1.0, 1e-9, 1e-6);
  EXPECT_TRUE(r.identity);
  // Same Gram entries without threshold rotate.
  auto r2 = compute_rotation<double>(1.0, 1.0, 1e-9);
  EXPECT_FALSE(r2.identity);
}

TEST(Rotation, OrthogonalizesRandomPairs) {
  hsvd::Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = hsvd::linalg::random_gaussian(32, 2, rng);
    auto ai = a.col(0);
    auto aj = a.col(1);
    const double aij = hsvd::linalg::dot<double>(ai, aj);
    const double aii = hsvd::linalg::dot<double>(ai, ai);
    const double ajj = hsvd::linalg::dot<double>(aj, aj);
    auto rot = compute_rotation(aii, ajj, aij);
    if (rot.identity) continue;
    hsvd::linalg::apply_rotation<double>(ai, aj, rot.c, rot.s);
    EXPECT_NEAR(hsvd::linalg::dot<double>(ai, aj), 0.0,
                1e-10 * std::sqrt(aii * ajj));
  }
}

TEST(Rotation, CSIsUnitVector) {
  hsvd::Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    const double aii = rng.uniform(0.1, 10.0);
    const double ajj = rng.uniform(0.1, 10.0);
    const double aij = rng.uniform(-3.0, 3.0);
    auto r = compute_rotation(aii, ajj, aij);
    EXPECT_NEAR(r.c * r.c + r.s * r.s, 1.0, 1e-12);
    EXPECT_GT(r.c, 0.0);  // smaller-angle branch keeps c positive
  }
}

TEST(Rotation, PicksSmallerAngle) {
  // |t| = |tan(theta)| <= 1 always holds for the inner-rotation formula.
  hsvd::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const double aii = rng.uniform(0.1, 10.0);
    const double ajj = rng.uniform(0.1, 10.0);
    const double aij = rng.uniform(-3.0, 3.0);
    auto r = compute_rotation(aii, ajj, aij);
    if (r.identity) continue;
    EXPECT_LE(std::fabs(r.t), 1.0 + 1e-12);
  }
}

TEST(Rotation, PreservesGramTrace) {
  // Rotation is orthogonal: aii + ajj is invariant.
  hsvd::Rng rng(24);
  auto a = hsvd::linalg::random_gaussian(16, 2, rng);
  const double aii = hsvd::linalg::dot<double>(a.col(0), a.col(0));
  const double ajj = hsvd::linalg::dot<double>(a.col(1), a.col(1));
  const double aij = hsvd::linalg::dot<double>(a.col(0), a.col(1));
  auto r = compute_rotation(aii, ajj, aij);
  hsvd::linalg::apply_rotation<double>(a.col(0), a.col(1), r.c, r.s);
  const double bii = hsvd::linalg::dot<double>(a.col(0), a.col(0));
  const double bjj = hsvd::linalg::dot<double>(a.col(1), a.col(1));
  EXPECT_NEAR(bii + bjj, aii + ajj, 1e-10);
}

TEST(Rotation, CoherenceMeasure) {
  EXPECT_DOUBLE_EQ(pair_coherence(4.0, 9.0, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(pair_coherence(0.0, 9.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(pair_coherence(1.0, 1.0, -1.0), 1.0);
}

TEST(Rotation, FloatSpecializationMatchesDouble) {
  auto rf = compute_rotation<float>(2.0f, 5.0f, 1.5f);
  auto rd = compute_rotation<double>(2.0, 5.0, 1.5);
  EXPECT_NEAR(rf.c, rd.c, 1e-6);
  EXPECT_NEAR(rf.s, rd.s, 1e-6);
}

}  // namespace
}  // namespace hsvd::jacobi
