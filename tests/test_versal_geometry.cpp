// Tests for the AIE array geometry: the mirrored core/memory layout and
// the neighbour-access rules the co-design exploits (section II-B/III-B).
#include <gtest/gtest.h>

#include "versal/geometry.hpp"

namespace hsvd::versal {
namespace {

TEST(Geometry, BoundsChecking) {
  ArrayGeometry geo(8, 50);
  EXPECT_EQ(geo.tile_count(), 400);
  EXPECT_TRUE(geo.contains({0, 0}));
  EXPECT_TRUE(geo.contains({7, 49}));
  EXPECT_FALSE(geo.contains({8, 0}));
  EXPECT_FALSE(geo.contains({0, 50}));
  EXPECT_FALSE(geo.contains({-1, 3}));
  EXPECT_THROW(ArrayGeometry(0, 5), std::invalid_argument);
}

TEST(Geometry, IndexIsRowMajorUnique) {
  ArrayGeometry geo(4, 6);
  EXPECT_EQ(geo.index_of({0, 0}), 0);
  EXPECT_EQ(geo.index_of({1, 0}), 6);
  EXPECT_EQ(geo.index_of({3, 5}), 23);
}

TEST(Geometry, RowParityMirrorsCoreAndMemory) {
  ArrayGeometry geo(4, 4);
  // Even row: core left of memory.
  EXPECT_LT(geo.core_x({0, 2}), geo.memory_x({0, 2}));
  // Odd row: mirrored.
  EXPECT_GT(geo.core_x({1, 2}), geo.memory_x({1, 2}));
}

TEST(Geometry, CoreAccessesOwnMemory) {
  ArrayGeometry geo(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_TRUE(geo.core_can_access_memory({r, c}, {r, c}))
          << r << "," << c;
}

TEST(Geometry, CoreAccessesVerticalNeighbours) {
  ArrayGeometry geo(8, 8);
  EXPECT_TRUE(geo.core_can_access_memory({2, 3}, {1, 3}));
  EXPECT_TRUE(geo.core_can_access_memory({2, 3}, {3, 3}));
  EXPECT_FALSE(geo.core_can_access_memory({2, 3}, {4, 3}));  // two rows away
}

TEST(Geometry, HorizontalAccessDependsOnRowParity) {
  ArrayGeometry geo(8, 8);
  // Even row: core at 2c reaches the west neighbour's memory (at 2c-1).
  EXPECT_TRUE(geo.core_can_access_memory({0, 3}, {0, 2}));
  EXPECT_FALSE(geo.core_can_access_memory({0, 3}, {0, 4}));
  // Odd row: mirrored -- east neighbour.
  EXPECT_TRUE(geo.core_can_access_memory({1, 3}, {1, 4}));
  EXPECT_FALSE(geo.core_can_access_memory({1, 3}, {1, 2}));
}

// The asymmetry at the heart of Fig. 3: which diagonal transfer avoids
// DMA flips with the source row's parity.
TEST(Geometry, NeighbourTransferParityAsymmetry) {
  ArrayGeometry geo(8, 8);
  // Even -> odd row: straight and leftward are neighbour transfers.
  EXPECT_TRUE(geo.neighbour_transfer_possible({0, 3}, {1, 3}));
  EXPECT_TRUE(geo.neighbour_transfer_possible({0, 3}, {1, 2}));
  EXPECT_FALSE(geo.neighbour_transfer_possible({0, 3}, {1, 4}));
  // Odd -> even row: straight and rightward.
  EXPECT_TRUE(geo.neighbour_transfer_possible({1, 3}, {2, 3}));
  EXPECT_TRUE(geo.neighbour_transfer_possible({1, 3}, {2, 4}));
  EXPECT_FALSE(geo.neighbour_transfer_possible({1, 3}, {2, 2}));
}

TEST(Geometry, LongDistanceTransfersNeedDma) {
  ArrayGeometry geo(8, 50);
  EXPECT_FALSE(geo.neighbour_transfer_possible({0, 0}, {1, 7}));
  EXPECT_FALSE(geo.neighbour_transfer_possible({0, 0}, {3, 0}));
  EXPECT_FALSE(geo.neighbour_transfer_possible({2, 10}, {2, 12}));
}

TEST(Geometry, SameTileIsAlwaysReachable) {
  ArrayGeometry geo(8, 8);
  EXPECT_TRUE(geo.neighbour_transfer_possible({5, 5}, {5, 5}));
}

TEST(Geometry, TransfersWithinRow) {
  ArrayGeometry geo(8, 8);
  // Horizontal one-step transfers share the memory between the cores.
  EXPECT_TRUE(geo.neighbour_transfer_possible({0, 3}, {0, 2}) ||
              geo.neighbour_transfer_possible({0, 3}, {0, 4}));
}

}  // namespace
}  // namespace hsvd::versal
