# Empty dependencies file for hsvd_perfmodel.
# This may be replaced when dependencies are built.
