file(REMOVE_RECURSE
  "CMakeFiles/hsvd_perfmodel.dir/perf_model.cpp.o"
  "CMakeFiles/hsvd_perfmodel.dir/perf_model.cpp.o.d"
  "CMakeFiles/hsvd_perfmodel.dir/resource_model.cpp.o"
  "CMakeFiles/hsvd_perfmodel.dir/resource_model.cpp.o.d"
  "libhsvd_perfmodel.a"
  "libhsvd_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
