file(REMOVE_RECURSE
  "libhsvd_perfmodel.a"
)
