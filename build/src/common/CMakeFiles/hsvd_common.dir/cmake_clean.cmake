file(REMOVE_RECURSE
  "CMakeFiles/hsvd_common.dir/csv.cpp.o"
  "CMakeFiles/hsvd_common.dir/csv.cpp.o.d"
  "CMakeFiles/hsvd_common.dir/table.cpp.o"
  "CMakeFiles/hsvd_common.dir/table.cpp.o.d"
  "libhsvd_common.a"
  "libhsvd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
