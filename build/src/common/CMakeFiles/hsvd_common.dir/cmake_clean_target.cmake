file(REMOVE_RECURSE
  "libhsvd_common.a"
)
