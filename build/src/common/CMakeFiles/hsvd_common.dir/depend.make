# Empty dependencies file for hsvd_common.
# This may be replaced when dependencies are built.
