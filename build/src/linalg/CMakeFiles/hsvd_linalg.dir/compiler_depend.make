# Empty compiler generated dependencies file for hsvd_linalg.
# This may be replaced when dependencies are built.
