file(REMOVE_RECURSE
  "CMakeFiles/hsvd_linalg.dir/generators.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/generators.cpp.o.d"
  "CMakeFiles/hsvd_linalg.dir/matrix_io.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/matrix_io.cpp.o.d"
  "CMakeFiles/hsvd_linalg.dir/metrics.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/metrics.cpp.o.d"
  "CMakeFiles/hsvd_linalg.dir/qr.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/hsvd_linalg.dir/reference_svd.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/reference_svd.cpp.o.d"
  "CMakeFiles/hsvd_linalg.dir/svd_utils.cpp.o"
  "CMakeFiles/hsvd_linalg.dir/svd_utils.cpp.o.d"
  "libhsvd_linalg.a"
  "libhsvd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
