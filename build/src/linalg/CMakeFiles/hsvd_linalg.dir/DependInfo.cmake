
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/generators.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/generators.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/generators.cpp.o.d"
  "/root/repo/src/linalg/matrix_io.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/matrix_io.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/matrix_io.cpp.o.d"
  "/root/repo/src/linalg/metrics.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/metrics.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/metrics.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/reference_svd.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/reference_svd.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/reference_svd.cpp.o.d"
  "/root/repo/src/linalg/svd_utils.cpp" "src/linalg/CMakeFiles/hsvd_linalg.dir/svd_utils.cpp.o" "gcc" "src/linalg/CMakeFiles/hsvd_linalg.dir/svd_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
