file(REMOVE_RECURSE
  "libhsvd_linalg.a"
)
