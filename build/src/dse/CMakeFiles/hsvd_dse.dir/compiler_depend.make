# Empty compiler generated dependencies file for hsvd_dse.
# This may be replaced when dependencies are built.
