file(REMOVE_RECURSE
  "CMakeFiles/hsvd_dse.dir/explorer.cpp.o"
  "CMakeFiles/hsvd_dse.dir/explorer.cpp.o.d"
  "CMakeFiles/hsvd_dse.dir/pareto.cpp.o"
  "CMakeFiles/hsvd_dse.dir/pareto.cpp.o.d"
  "libhsvd_dse.a"
  "libhsvd_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
