file(REMOVE_RECURSE
  "libhsvd_dse.a"
)
