# Empty dependencies file for heterosvd.
# This may be replaced when dependencies are built.
