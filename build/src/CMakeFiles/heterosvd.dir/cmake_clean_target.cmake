file(REMOVE_RECURSE
  "libheterosvd.a"
)
