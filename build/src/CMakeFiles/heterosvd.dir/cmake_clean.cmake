file(REMOVE_RECURSE
  "CMakeFiles/heterosvd.dir/heterosvd.cpp.o"
  "CMakeFiles/heterosvd.dir/heterosvd.cpp.o.d"
  "libheterosvd.a"
  "libheterosvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterosvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
