
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/versal/array.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/array.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/array.cpp.o.d"
  "/root/repo/src/versal/geometry.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/geometry.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/geometry.cpp.o.d"
  "/root/repo/src/versal/memory.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/memory.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/memory.cpp.o.d"
  "/root/repo/src/versal/noc.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/noc.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/noc.cpp.o.d"
  "/root/repo/src/versal/packet.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/packet.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/packet.cpp.o.d"
  "/root/repo/src/versal/trace.cpp" "src/versal/CMakeFiles/hsvd_versal.dir/trace.cpp.o" "gcc" "src/versal/CMakeFiles/hsvd_versal.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
