# Empty compiler generated dependencies file for hsvd_versal.
# This may be replaced when dependencies are built.
