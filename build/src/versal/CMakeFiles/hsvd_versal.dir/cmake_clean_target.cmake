file(REMOVE_RECURSE
  "libhsvd_versal.a"
)
