file(REMOVE_RECURSE
  "CMakeFiles/hsvd_versal.dir/array.cpp.o"
  "CMakeFiles/hsvd_versal.dir/array.cpp.o.d"
  "CMakeFiles/hsvd_versal.dir/geometry.cpp.o"
  "CMakeFiles/hsvd_versal.dir/geometry.cpp.o.d"
  "CMakeFiles/hsvd_versal.dir/memory.cpp.o"
  "CMakeFiles/hsvd_versal.dir/memory.cpp.o.d"
  "CMakeFiles/hsvd_versal.dir/noc.cpp.o"
  "CMakeFiles/hsvd_versal.dir/noc.cpp.o.d"
  "CMakeFiles/hsvd_versal.dir/packet.cpp.o"
  "CMakeFiles/hsvd_versal.dir/packet.cpp.o.d"
  "CMakeFiles/hsvd_versal.dir/trace.cpp.o"
  "CMakeFiles/hsvd_versal.dir/trace.cpp.o.d"
  "libhsvd_versal.a"
  "libhsvd_versal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_versal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
