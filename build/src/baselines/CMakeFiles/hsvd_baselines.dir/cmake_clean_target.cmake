file(REMOVE_RECURSE
  "libhsvd_baselines.a"
)
