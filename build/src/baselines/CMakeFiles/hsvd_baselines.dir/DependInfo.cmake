
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bcv.cpp" "src/baselines/CMakeFiles/hsvd_baselines.dir/bcv.cpp.o" "gcc" "src/baselines/CMakeFiles/hsvd_baselines.dir/bcv.cpp.o.d"
  "/root/repo/src/baselines/cpu_reference.cpp" "src/baselines/CMakeFiles/hsvd_baselines.dir/cpu_reference.cpp.o" "gcc" "src/baselines/CMakeFiles/hsvd_baselines.dir/cpu_reference.cpp.o.d"
  "/root/repo/src/baselines/fpga_model.cpp" "src/baselines/CMakeFiles/hsvd_baselines.dir/fpga_model.cpp.o" "gcc" "src/baselines/CMakeFiles/hsvd_baselines.dir/fpga_model.cpp.o.d"
  "/root/repo/src/baselines/gpu_model.cpp" "src/baselines/CMakeFiles/hsvd_baselines.dir/gpu_model.cpp.o" "gcc" "src/baselines/CMakeFiles/hsvd_baselines.dir/gpu_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/jacobi/CMakeFiles/hsvd_jacobi.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hsvd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
