file(REMOVE_RECURSE
  "CMakeFiles/hsvd_baselines.dir/bcv.cpp.o"
  "CMakeFiles/hsvd_baselines.dir/bcv.cpp.o.d"
  "CMakeFiles/hsvd_baselines.dir/cpu_reference.cpp.o"
  "CMakeFiles/hsvd_baselines.dir/cpu_reference.cpp.o.d"
  "CMakeFiles/hsvd_baselines.dir/fpga_model.cpp.o"
  "CMakeFiles/hsvd_baselines.dir/fpga_model.cpp.o.d"
  "CMakeFiles/hsvd_baselines.dir/gpu_model.cpp.o"
  "CMakeFiles/hsvd_baselines.dir/gpu_model.cpp.o.d"
  "libhsvd_baselines.a"
  "libhsvd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
