# Empty compiler generated dependencies file for hsvd_baselines.
# This may be replaced when dependencies are built.
