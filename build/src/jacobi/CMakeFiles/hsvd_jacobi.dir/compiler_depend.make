# Empty compiler generated dependencies file for hsvd_jacobi.
# This may be replaced when dependencies are built.
