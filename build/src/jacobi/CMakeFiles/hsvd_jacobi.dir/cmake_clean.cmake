file(REMOVE_RECURSE
  "CMakeFiles/hsvd_jacobi.dir/block.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/block.cpp.o.d"
  "CMakeFiles/hsvd_jacobi.dir/complex_hestenes.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/complex_hestenes.cpp.o.d"
  "CMakeFiles/hsvd_jacobi.dir/hestenes.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/hestenes.cpp.o.d"
  "CMakeFiles/hsvd_jacobi.dir/movement.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/movement.cpp.o.d"
  "CMakeFiles/hsvd_jacobi.dir/normalization.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/normalization.cpp.o.d"
  "CMakeFiles/hsvd_jacobi.dir/ordering.cpp.o"
  "CMakeFiles/hsvd_jacobi.dir/ordering.cpp.o.d"
  "libhsvd_jacobi.a"
  "libhsvd_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
