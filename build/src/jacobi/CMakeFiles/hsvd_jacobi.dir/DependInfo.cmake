
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jacobi/block.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/block.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/block.cpp.o.d"
  "/root/repo/src/jacobi/complex_hestenes.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/complex_hestenes.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/complex_hestenes.cpp.o.d"
  "/root/repo/src/jacobi/hestenes.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/hestenes.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/hestenes.cpp.o.d"
  "/root/repo/src/jacobi/movement.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/movement.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/movement.cpp.o.d"
  "/root/repo/src/jacobi/normalization.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/normalization.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/normalization.cpp.o.d"
  "/root/repo/src/jacobi/ordering.cpp" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/ordering.cpp.o" "gcc" "src/jacobi/CMakeFiles/hsvd_jacobi.dir/ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hsvd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
