file(REMOVE_RECURSE
  "libhsvd_jacobi.a"
)
