file(REMOVE_RECURSE
  "CMakeFiles/hsvd_accel.dir/accelerator.cpp.o"
  "CMakeFiles/hsvd_accel.dir/accelerator.cpp.o.d"
  "CMakeFiles/hsvd_accel.dir/dataflow.cpp.o"
  "CMakeFiles/hsvd_accel.dir/dataflow.cpp.o.d"
  "CMakeFiles/hsvd_accel.dir/kernels.cpp.o"
  "CMakeFiles/hsvd_accel.dir/kernels.cpp.o.d"
  "CMakeFiles/hsvd_accel.dir/pl_modules.cpp.o"
  "CMakeFiles/hsvd_accel.dir/pl_modules.cpp.o.d"
  "CMakeFiles/hsvd_accel.dir/placement.cpp.o"
  "CMakeFiles/hsvd_accel.dir/placement.cpp.o.d"
  "CMakeFiles/hsvd_accel.dir/report.cpp.o"
  "CMakeFiles/hsvd_accel.dir/report.cpp.o.d"
  "libhsvd_accel.a"
  "libhsvd_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
