
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/accelerator.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/accelerator.cpp.o.d"
  "/root/repo/src/accel/dataflow.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/dataflow.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/dataflow.cpp.o.d"
  "/root/repo/src/accel/kernels.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/kernels.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/kernels.cpp.o.d"
  "/root/repo/src/accel/pl_modules.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/pl_modules.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/pl_modules.cpp.o.d"
  "/root/repo/src/accel/placement.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/placement.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/placement.cpp.o.d"
  "/root/repo/src/accel/report.cpp" "src/accel/CMakeFiles/hsvd_accel.dir/report.cpp.o" "gcc" "src/accel/CMakeFiles/hsvd_accel.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/jacobi/CMakeFiles/hsvd_jacobi.dir/DependInfo.cmake"
  "/root/repo/build/src/versal/CMakeFiles/hsvd_versal.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/hsvd_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hsvd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
