# Empty compiler generated dependencies file for hsvd_accel.
# This may be replaced when dependencies are built.
