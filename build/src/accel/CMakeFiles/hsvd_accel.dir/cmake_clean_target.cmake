file(REMOVE_RECURSE
  "libhsvd_accel.a"
)
