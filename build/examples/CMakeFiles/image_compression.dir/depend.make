# Empty dependencies file for image_compression.
# This may be replaced when dependencies are built.
