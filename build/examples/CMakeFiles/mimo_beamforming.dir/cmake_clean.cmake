file(REMOVE_RECURSE
  "CMakeFiles/mimo_beamforming.dir/mimo_beamforming.cpp.o"
  "CMakeFiles/mimo_beamforming.dir/mimo_beamforming.cpp.o.d"
  "mimo_beamforming"
  "mimo_beamforming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimo_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
