# Empty compiler generated dependencies file for mimo_beamforming.
# This may be replaced when dependencies are built.
