file(REMOVE_RECURSE
  "CMakeFiles/recommender_topk.dir/recommender_topk.cpp.o"
  "CMakeFiles/recommender_topk.dir/recommender_topk.cpp.o.d"
  "recommender_topk"
  "recommender_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
