# Empty compiler generated dependencies file for recommender_topk.
# This may be replaced when dependencies are built.
