file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ordering.dir/bench_fig3_ordering.cpp.o"
  "CMakeFiles/bench_fig3_ordering.dir/bench_fig3_ordering.cpp.o.d"
  "bench_fig3_ordering"
  "bench_fig3_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
