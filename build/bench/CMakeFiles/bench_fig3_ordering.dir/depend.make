# Empty dependencies file for bench_fig3_ordering.
# This may be replaced when dependencies are built.
