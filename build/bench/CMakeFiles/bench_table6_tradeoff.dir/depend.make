# Empty dependencies file for bench_table6_tradeoff.
# This may be replaced when dependencies are built.
