file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_dataflow.dir/bench_fig4_dataflow.cpp.o"
  "CMakeFiles/bench_fig4_dataflow.dir/bench_fig4_dataflow.cpp.o.d"
  "bench_fig4_dataflow"
  "bench_fig4_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
