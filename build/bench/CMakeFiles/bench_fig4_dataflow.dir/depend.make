# Empty dependencies file for bench_fig4_dataflow.
# This may be replaced when dependencies are built.
