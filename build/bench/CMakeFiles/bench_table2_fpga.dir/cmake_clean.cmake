file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fpga.dir/bench_table2_fpga.cpp.o"
  "CMakeFiles/bench_table2_fpga.dir/bench_table2_fpga.cpp.o.d"
  "bench_table2_fpga"
  "bench_table2_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
