file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_codesign.dir/bench_ablation_codesign.cpp.o"
  "CMakeFiles/bench_ablation_codesign.dir/bench_ablation_codesign.cpp.o.d"
  "bench_ablation_codesign"
  "bench_ablation_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
