
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_scenarios.cpp" "bench/CMakeFiles/bench_table5_scenarios.dir/bench_table5_scenarios.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_scenarios.dir/bench_table5_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hsvd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/jacobi/CMakeFiles/hsvd_jacobi.dir/DependInfo.cmake"
  "/root/repo/build/src/versal/CMakeFiles/hsvd_versal.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/hsvd_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/hsvd_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/hsvd_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hsvd_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
