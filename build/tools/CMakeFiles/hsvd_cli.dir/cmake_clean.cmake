file(REMOVE_RECURSE
  "CMakeFiles/hsvd_cli.dir/hsvd_cli.cpp.o"
  "CMakeFiles/hsvd_cli.dir/hsvd_cli.cpp.o.d"
  "hsvd"
  "hsvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsvd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
