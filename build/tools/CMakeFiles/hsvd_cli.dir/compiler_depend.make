# Empty compiler generated dependencies file for hsvd_cli.
# This may be replaced when dependencies are built.
