# Empty compiler generated dependencies file for hsvd_tests.
# This may be replaced when dependencies are built.
