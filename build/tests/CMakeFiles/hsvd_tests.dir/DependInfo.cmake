
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerator.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_accelerator.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_accelerator.cpp.o.d"
  "/root/repo/tests/test_accelerator_sweep.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_accelerator_sweep.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_accelerator_sweep.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_block.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_block.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_block.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_complex_hestenes.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_complex_hestenes.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_complex_hestenes.cpp.o.d"
  "/root/repo/tests/test_dataflow.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_dataflow.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_dataflow.cpp.o.d"
  "/root/repo/tests/test_dse.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_dse.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_dse.cpp.o.d"
  "/root/repo/tests/test_evaluation_shapes.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_evaluation_shapes.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_evaluation_shapes.cpp.o.d"
  "/root/repo/tests/test_facade.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_facade.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_facade.cpp.o.d"
  "/root/repo/tests/test_hestenes.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_hestenes.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_hestenes.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_matrix_io.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_matrix_io.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_matrix_io.cpp.o.d"
  "/root/repo/tests/test_movement.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_movement.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_movement.cpp.o.d"
  "/root/repo/tests/test_noc_threshold.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_noc_threshold.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_noc_threshold.cpp.o.d"
  "/root/repo/tests/test_ordering.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_ordering.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_ordering.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_perf_model.cpp.o.d"
  "/root/repo/tests/test_pl_modules.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_pl_modules.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_pl_modules.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_qr_svd_utils.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_qr_svd_utils.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_qr_svd_utils.cpp.o.d"
  "/root/repo/tests/test_reference_svd.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_reference_svd.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_reference_svd.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rotation.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_rotation.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_rotation.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_versal_geometry.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_versal_geometry.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_versal_geometry.cpp.o.d"
  "/root/repo/tests/test_versal_sim.cpp" "tests/CMakeFiles/hsvd_tests.dir/test_versal_sim.cpp.o" "gcc" "tests/CMakeFiles/hsvd_tests.dir/test_versal_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsvd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hsvd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/jacobi/CMakeFiles/hsvd_jacobi.dir/DependInfo.cmake"
  "/root/repo/build/src/versal/CMakeFiles/hsvd_versal.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/hsvd_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/hsvd_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/hsvd_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hsvd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heterosvd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
